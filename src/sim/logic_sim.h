#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "base/error.h"
#include "netlist/netlist.h"
#include "sim/pattern_vec.h"

namespace fstg {

/// A fault injectable into the word-parallel simulator.
struct FaultSpec {
  enum class Kind : std::uint8_t {
    kNone,       ///< fault-free
    kStuckGate,  ///< gate output (stem) stuck at `value`
    kStuckPin,   ///< input pin `pin` of gate `gate` (branch) stuck at `value`
    kBridge,     ///< non-feedback bridge between outputs of gates `gate` and
                 ///< `gate2`; AND-type if `value` is false, OR-type if true
  };
  Kind kind = Kind::kNone;
  int gate = -1;
  int gate2_or_pin = -1;
  bool value = false;

  static FaultSpec none() { return {}; }
  static FaultSpec stuck_gate(int gate, bool value) {
    return {Kind::kStuckGate, gate, -1, value};
  }
  static FaultSpec stuck_pin(int gate, int pin, bool value) {
    return {Kind::kStuckPin, gate, pin, value};
  }
  static FaultSpec bridge_and(int g1, int g2) {
    return {Kind::kBridge, g1, g2, false};
  }
  static FaultSpec bridge_or(int g1, int g2) {
    return {Kind::kBridge, g1, g2, true};
  }

  bool operator==(const FaultSpec& o) const = default;
};

/// Tallies of the event-driven overlay path, accumulated with plain
/// increments (a simulator instance is thread-confined, so no atomics in
/// the hot loop); the fault-simulation engine flushes them into the obs
/// metrics registry once per run (counters sim.event_pushes /
/// sim.event_pops / sim.overlay_calls / sim.overlay_unexcited /
/// sim.overlay_gates_changed). Width-independent so the fault-sim driver
/// can merge tallies across engines of different lane widths.
struct LogicSimStats {
  std::uint64_t overlay_calls = 0;      ///< run_cone_overlay invocations
  std::uint64_t overlay_unexcited = 0;  ///< calls that returned 0
  std::uint64_t event_pushes = 0;       ///< event-queue insertions
  std::uint64_t event_pops = 0;         ///< event-queue removals
  std::uint64_t gates_changed = 0;      ///< overlay stamps (value != base)

  LogicSimStats& operator+=(const LogicSimStats& o) {
    overlay_calls += o.overlay_calls;
    overlay_unexcited += o.overlay_unexcited;
    event_pushes += o.event_pushes;
    event_pops += o.event_pops;
    gates_changed += o.gates_changed;
    return *this;
  }
};

namespace detail {

/// Three-valued wired resolution of a bridge: AND-type (value=false) drives
/// both lines to v1&v2, OR-type to v1|v2; the result is X unless it is
/// forced by a definite controlling side (a definite 0 on either line of an
/// AND bridge, a definite 1 on either line of an OR bridge) or both sides
/// are defined.
template <class V>
inline std::pair<V, V> wired3(bool or_type, const V& v1, const V& x1,
                              const V& v2, const V& x2) {
  const V def0_1 = ~(v1 | x1);
  const V def0_2 = ~(v2 | x2);
  if (or_type) {
    const V v = v1 | v2;
    return {v, ~(v | (def0_1 & def0_2))};
  }
  const V v = v1 & v2;
  return {v, ~(v | def0_1 | def0_2)};
}

}  // namespace detail

/// Word-parallel (LaneOps<V>::kBits patterns per pass) levelized evaluation
/// of a combinational netlist, with single-fault injection. The netlist's
/// topological storage order makes evaluation a single linear sweep;
/// bridging faults take a second partial sweep (see run2/run3 for why this
/// is exact for non-feedback bridges).
///
/// The lane type `V` is either plain Word (the portable 64-pattern path) or
/// PatternVec<4>/PatternVec<8> (256/512 patterns per pass, compiled into
/// AVX2/AVX-512 code in the dedicated engine translation units — see
/// pattern_vec.h for the ISA discipline).
///
/// --- Three-valued (0/1/X) lanes -------------------------------------------
///
/// Every signal carries a value vector plus an X-mask vector (canonical
/// form: `value & xmask == 0`; an X lane reads as value 0, xmask 1). The X
/// plane is evaluated pessimistically (an AND with a definite-0 input is 0
/// even if other inputs are X; an XOR/XNOR with any X input is X). Patterns
/// without X bits pay nothing: the X plane is skipped entirely while every
/// input X vector is zero, which is detected per run.
template <class V>
class LogicSimT {
 public:
  using Lanes = LaneOps<V>;
  using Stats = LogicSimStats;

  explicit LogicSimT(const Netlist& nl);

  /// Set the lane values of primary input `input_index`.
  void set_input(int input_index, const V& w) {
    input_words_[static_cast<std::size_t>(input_index)] = w;
  }
  const V& input(int input_index) const {
    return input_words_[static_cast<std::size_t>(input_index)];
  }
  /// Lanes of primary input `input_index` that carry X. Value bits under an
  /// X bit are ignored (canonicalized to 0 at evaluation time). Cleared for
  /// all inputs by clear_input_x().
  void set_input_x(int input_index, const V& w) {
    input_x_[static_cast<std::size_t>(input_index)] = w;
    input_x_set_ = input_x_set_ || Lanes::any(w);
  }
  /// Reset every input X vector to zero (cheap no-op when none was set).
  void clear_input_x();

  /// Evaluate all gates under `fault` (kNone = fault-free).
  void run(const FaultSpec& fault = FaultSpec::none());

  const V& value(int gate_id) const {
    return values_[static_cast<std::size_t>(gate_id)];
  }
  /// X-mask of `gate_id` after the last evaluation (all zero when the last
  /// evaluation was two-valued).
  V xval(int gate_id) const {
    return x_clean_ ? Lanes::zero() : xvals_[static_cast<std::size_t>(gate_id)];
  }
  const V& output(int output_index) const {
    return values_[static_cast<std::size_t>(
        nl_->outputs()[static_cast<std::size_t>(output_index)])];
  }
  V output_x(int output_index) const {
    return xval(nl_->outputs()[static_cast<std::size_t>(output_index)]);
  }
  const std::vector<V>& values() const { return values_; }
  /// X plane of the last evaluation. Always sized num_gates; all-zero after
  /// a two-valued run. `last_run_had_x()` says whether it is worth storing.
  const std::vector<V>& xvals() const { return xvals_; }
  /// True iff the last run() evaluated three-valued (some input lane was X),
  /// i.e. the X plane may be nonzero. The scan simulator uses this to store
  /// X planes only for the cycles that actually carry X.
  bool last_run_had_x() const { return !x_clean_; }

  /// Overwrite all gate values (used to seed a known-good evaluation
  /// before a cone-restricted faulty re-evaluation).
  void seed_values(const std::vector<V>& values) { values_ = values; }
  /// Seed the X plane alongside seed_values; pass nullptr for an all-defined
  /// trace (cheap: only zeroes the plane if a previous run dirtied it).
  void seed_xvals(const std::vector<V>* x);

  /// Re-evaluate only the gates in `cone` (sorted ascending; the fault
  /// site's transitive fanout) on top of seeded values. All other gates —
  /// including the primary inputs — keep their seeded values, which is
  /// exact as long as the seeded values are the fault-free values of the
  /// same cycle. This is the single-fault-propagation fast path.
  void run_cone(const FaultSpec& fault, const std::vector<int>& cone);

  /// Force gate `g` to `value` and re-evaluate everything downstream of it
  /// (all ids > g, g itself held). Valid after any full evaluation; used
  /// by the transition-delay fault simulator, which needs the raw value of
  /// the fault site before deciding the delayed value.
  void override_and_propagate(int gate, const V& value);

  /// --- Event-driven overlay evaluation ------------------------------------
  ///
  /// The fast path of fault simulation evaluates one faulty cycle against a
  /// known fault-free value array (`base`, the good trace's gate values for
  /// that cycle) without copying it: changed gates are recorded in an
  /// epoch-stamped overlay, and an event queue re-evaluates exactly the
  /// fanouts of gates that actually changed. Gates whose recomputed value
  /// equals the fault-free value are not stamped and push no events, so a
  /// dying fault effect prunes its own downstream work completely. The
  /// netlist's topological storage order is its levelization: a min-heap on
  /// gate id pops every gate after all its fanins, so one evaluation per
  /// touched gate is exact. (`cone` is unused by this path and kept for
  /// signature parity with run_cone.)
  ///
  /// `base_x` is the matching fault-free X plane, or nullptr for an
  /// all-defined trace. With a non-null `base_x` the overlay tracks
  /// (value, xmask) pairs and a gate counts as changed when *either* plane
  /// differs from the base — comparing only the value plane would silently
  /// drop defined->X transitions (difftest corpus case xprop_xor_overlay).
  ///
  /// Returns the number of gates whose (value, xmask) differs from the
  /// base (0 = the fault is not excited this cycle — the whole cycle can be
  /// skipped: every output and the next state equal the fault-free
  /// reference).
  int run_cone_overlay(const FaultSpec& fault, const std::vector<int>& cone,
                       const V* base, const V* base_x = nullptr);

  /// Would run_cone_overlay stamp anything for `fault` against this base
  /// cycle? Exactly the overlay's seeding predicate with none of its
  /// epoch/heap setup. ~97% of (fault, cycle) pairs are unexcited, and for
  /// stuck-at-gate faults — the bulk of every fault list — the answer is one
  /// load and one compare, so the scan simulator asks this first and enters
  /// the overlay machinery only for cycles that can actually propagate.
  bool fault_excited(const FaultSpec& fault, const V* base,
                     const V* base_x) const;

  /// Faulty value of `gate` after run_cone_overlay (base value if unchanged).
  V overlay_value(int gate, const V* base) const {
    return overlay_stamp_[static_cast<std::size_t>(gate)] == overlay_epoch_
               ? overlay_[static_cast<std::size_t>(gate)]
               : base[gate];
  }
  /// Faulty X-mask of `gate` after run_cone_overlay.
  V overlay_xval(int gate, const V* base_x) const {
    return overlay_stamp_[static_cast<std::size_t>(gate)] == overlay_epoch_
               ? overlay_x_[static_cast<std::size_t>(gate)]
               : (base_x == nullptr ? Lanes::zero() : base_x[gate]);
  }
  /// Faulty value of output `output_index` after run_cone_overlay.
  V overlay_output(int output_index, const V* base) const {
    return overlay_value(
        nl_->outputs()[static_cast<std::size_t>(output_index)], base);
  }
  V overlay_output_xval(int output_index, const V* base_x) const {
    return overlay_xval(
        nl_->outputs()[static_cast<std::size_t>(output_index)], base_x);
  }
  /// Lanes where output `output_index` *detectably* differs from the
  /// fault-free base after run_cone_overlay: both sides defined and values
  /// opposite. X lanes on either side never count as a detection.
  V overlay_output_det_diff(int output_index, const V* base,
                            const V* base_x) const {
    const std::size_t g = static_cast<std::size_t>(
        nl_->outputs()[static_cast<std::size_t>(output_index)]);
    if (overlay_stamp_[g] != overlay_epoch_) return Lanes::zero();
    const V diff = overlay_[g] ^ base[g];
    if (base_x == nullptr) return diff;
    return diff & ~overlay_x_[g] & ~base_x[g];
  }
  /// Lanes where output `output_index` differs from the base in *any* way
  /// (value or X-ness). This is what next-state divergence tracking needs:
  /// a state bit that turns X must make the lane dirty even though it is
  /// not (yet) a detection.
  V overlay_output_any_diff(int output_index, const V* base,
                            const V* base_x) const {
    const std::size_t g = static_cast<std::size_t>(
        nl_->outputs()[static_cast<std::size_t>(output_index)]);
    if (overlay_stamp_[g] != overlay_epoch_) return Lanes::zero();
    V diff = overlay_[g] ^ base[g];
    if (base_x != nullptr) diff |= overlay_x_[g] ^ base_x[g];
    return diff;
  }

  const Netlist& netlist() const { return *nl_; }

  const Stats& stats() const { return stats_; }

 private:
  /// Evaluate gate `id` reading fanin values through `value_of(pin, fanin)`
  /// where `pin` is the fanin position within the gate. The direct path
  /// binds it to `values_`; the overlay path maps fanins through the
  /// epoch-stamped overlay; stuck-pin injection forces exactly the faulted
  /// position (a branch fault on a gate with duplicated fanins must not
  /// force the siblings — that matches PODEM's per-pin semantics; difftest
  /// corpus case stuck_pin_dup_fanin).
  template <typename ValueOf>
  V eval_gate_with(int id, ValueOf&& value_of) const {
    const int begin = fanin_begin_[static_cast<std::size_t>(id)];
    const int end = fanin_begin_[static_cast<std::size_t>(id) + 1];
    switch (type_[static_cast<std::size_t>(id)]) {
      case GateType::kInput:
        return input_words_[static_cast<std::size_t>(
            input_index_[static_cast<std::size_t>(id)])];
      case GateType::kConst0:
        return Lanes::zero();
      case GateType::kConst1:
        return Lanes::ones();
      case GateType::kBuf:
        return value_of(0, fanins_[static_cast<std::size_t>(begin)]);
      case GateType::kNot:
        return ~value_of(0, fanins_[static_cast<std::size_t>(begin)]);
      case GateType::kAnd: {
        V v = Lanes::ones();
        for (int p = begin; p < end; ++p)
          v &= value_of(p - begin, fanins_[static_cast<std::size_t>(p)]);
        return v;
      }
      case GateType::kNand: {
        V v = Lanes::ones();
        for (int p = begin; p < end; ++p)
          v &= value_of(p - begin, fanins_[static_cast<std::size_t>(p)]);
        return ~v;
      }
      case GateType::kOr: {
        V v = Lanes::zero();
        for (int p = begin; p < end; ++p)
          v |= value_of(p - begin, fanins_[static_cast<std::size_t>(p)]);
        return v;
      }
      case GateType::kNor: {
        V v = Lanes::zero();
        for (int p = begin; p < end; ++p)
          v |= value_of(p - begin, fanins_[static_cast<std::size_t>(p)]);
        return ~v;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        // Parity over all fanins (n-ary; reading only the first two was the
        // xor_nary_parity difftest bug).
        V v = Lanes::zero();
        for (int p = begin; p < end; ++p)
          v ^= value_of(p - begin, fanins_[static_cast<std::size_t>(p)]);
        return type_[static_cast<std::size_t>(id)] == GateType::kXor ? v : ~v;
      }
    }
    return Lanes::zero();
  }

  /// Three-valued twin of eval_gate_with: `vx_of(pin, fanin)` returns the
  /// (value, xmask) pair of a fanin; the result is the pessimistic 0/1/X
  /// evaluation in canonical form (value bit 0 wherever the X bit is set).
  template <typename VxOf>
  std::pair<V, V> eval_gate_x_with(int id, VxOf&& vx_of) const {
    const int begin = fanin_begin_[static_cast<std::size_t>(id)];
    const int end = fanin_begin_[static_cast<std::size_t>(id) + 1];
    const GateType type = type_[static_cast<std::size_t>(id)];
    switch (type) {
      case GateType::kInput: {
        const std::size_t ii = static_cast<std::size_t>(
            input_index_[static_cast<std::size_t>(id)]);
        const V x = input_x_[ii];
        return {input_words_[ii] & ~x, x};
      }
      case GateType::kConst0:
        return {Lanes::zero(), Lanes::zero()};
      case GateType::kConst1:
        return {Lanes::ones(), Lanes::zero()};
      case GateType::kBuf:
        return vx_of(0, fanins_[static_cast<std::size_t>(begin)]);
      case GateType::kNot: {
        const auto [v, x] = vx_of(0, fanins_[static_cast<std::size_t>(begin)]);
        return {~v & ~x, x};
      }
      case GateType::kAnd:
      case GateType::kNand: {
        V all1 = Lanes::ones();  // lanes where every fanin is definite 1
        V any0 = Lanes::zero();  // lanes where some fanin is definite 0
        for (int p = begin; p < end; ++p) {
          const auto [v, x] =
              vx_of(p - begin, fanins_[static_cast<std::size_t>(p)]);
          all1 &= v;
          any0 |= ~(v | x);
        }
        const V x = ~(all1 | any0);
        return type == GateType::kAnd ? std::pair<V, V>{all1, x}
                                      : std::pair<V, V>{any0, x};
      }
      case GateType::kOr:
      case GateType::kNor: {
        V any1 = Lanes::zero();
        V all0 = Lanes::ones();
        for (int p = begin; p < end; ++p) {
          const auto [v, x] =
              vx_of(p - begin, fanins_[static_cast<std::size_t>(p)]);
          any1 |= v;
          all0 &= ~(v | x);
        }
        const V x = ~(any1 | all0);
        return type == GateType::kOr ? std::pair<V, V>{any1, x}
                                     : std::pair<V, V>{all0, x};
      }
      case GateType::kXor:
      case GateType::kXnor: {
        V parity = Lanes::zero();
        V anyx = Lanes::zero();
        for (int p = begin; p < end; ++p) {
          const auto [v, x] =
              vx_of(p - begin, fanins_[static_cast<std::size_t>(p)]);
          parity ^= v;
          anyx |= x;
        }
        if (type == GateType::kXnor) parity = ~parity;
        return {parity & ~anyx, anyx};
      }
    }
    return {Lanes::zero(), Lanes::zero()};
  }

  V eval_gate(int id) const {
    return eval_gate_with(id, [this](int, int g) -> const V& {
      return values_[static_cast<std::size_t>(g)];
    });
  }
  std::pair<V, V> eval_gate_x(int id) const {
    return eval_gate_x_with(id, [this](int, int g) {
      return std::pair<V, V>{values_[static_cast<std::size_t>(g)],
                             xvals_[static_cast<std::size_t>(g)]};
    });
  }
  void eval_span(int first_gate, int skip_a, int skip_b);
  void eval_span_x(int first_gate, int skip_a, int skip_b);
  /// True when any input X vector is nonzero; resets input_x_set_ when the
  /// flag was conservative (set then overwritten with zeros).
  bool inputs_have_x();
  /// Two- and three-valued bodies of run(); the latter maintains xvals_.
  void run2(const FaultSpec& fault);
  void run3(const FaultSpec& fault);
  /// Record `value` for `gate` in the current overlay epoch.
  void overlay_stamp(int gate, const V& value, const V& xmask) {
    overlay_[static_cast<std::size_t>(gate)] = value;
    overlay_x_[static_cast<std::size_t>(gate)] = xmask;
    overlay_stamp_[static_cast<std::size_t>(gate)] = overlay_epoch_;
  }
  void overlay_prepare();
  /// Hand-rolled binary min-heap on gate id over heap_. Member functions
  /// (not std::push_heap/pop_heap) so the emitted symbols are distinct per
  /// lane width V — the per-width engine TUs are compiled with different
  /// ISA flags, and width-independent COMDATs would be merged across them
  /// by the linker (see pattern_vec.h for the discipline).
  void heap_push(int id) {
    heap_.push_back(id);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (heap_[parent] <= heap_[i]) break;
      const int tmp = heap_[parent];
      heap_[parent] = heap_[i];
      heap_[i] = tmp;
      i = parent;
    }
  }
  int heap_pop() {
    const int top = heap_[0];
    const int last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t l = 2 * i + 1;
        if (l >= n) break;
        const std::size_t r = l + 1;
        std::size_t m = (r < n && heap_[r] < heap_[l]) ? r : l;
        if (heap_[m] >= last) break;
        heap_[i] = heap_[m];
        i = m;
      }
      heap_[i] = last;
    }
    return top;
  }

  const Netlist* nl_;
  std::vector<V> input_words_;
  std::vector<V> input_x_;
  std::vector<V> values_;
  std::vector<V> xvals_;
  /// xvals_ is known all-zero and the last evaluation was two-valued.
  bool x_clean_ = true;
  /// Some set_input_x call since the last clear passed a nonzero vector
  /// (conservative; verified against the actual vectors once per run).
  bool input_x_set_ = false;
  // CSR-flattened netlist for the hot loop.
  std::vector<GateType> type_;
  std::vector<int> fanin_begin_;
  std::vector<int> fanins_;
  std::vector<int> input_index_;
  // Fanout CSR (transpose of the fanin CSR), built lazily on the first
  // run_cone_overlay: the event queue pushes exactly the fanouts of gates
  // whose value changed, so a dying fault effect costs nothing downstream.
  std::vector<int> fanout_begin_;
  std::vector<int> fanouts_;
  // Event-driven overlay scratch (O(1) reset via epoch bump). queue_stamp_
  // dedups event-queue pushes within one epoch; heap_ is a min-heap on gate
  // id, so gates pop in topological order and one evaluation per touched
  // gate is exact.
  std::vector<V> overlay_;
  std::vector<V> overlay_x_;
  std::vector<std::uint32_t> overlay_stamp_;
  std::vector<std::uint32_t> queue_stamp_;
  std::vector<int> heap_;
  std::uint32_t overlay_epoch_ = 0;
  Stats stats_;
};

// ---------------------------------------------------------------------------
// Member definitions (template: included by every width's translation unit;
// explicitly instantiated for Word in logic_sim.cpp).
// ---------------------------------------------------------------------------

template <class V>
LogicSimT<V>::LogicSimT(const Netlist& nl) : nl_(&nl) {
  input_words_.assign(static_cast<std::size_t>(nl.num_inputs()),
                      Lanes::zero());
  input_x_.assign(static_cast<std::size_t>(nl.num_inputs()), Lanes::zero());
  values_.assign(static_cast<std::size_t>(nl.num_gates()), Lanes::zero());
  xvals_.assign(static_cast<std::size_t>(nl.num_gates()), Lanes::zero());

  // Flatten the netlist into CSR form for the hot evaluation loop.
  const int n = nl.num_gates();
  type_.resize(static_cast<std::size_t>(n));
  fanin_begin_.resize(static_cast<std::size_t>(n) + 1);
  input_index_.assign(static_cast<std::size_t>(n), -1);
  int inputs_seen = 0;
  std::size_t total_fanins = 0;
  for (int id = 0; id < n; ++id) total_fanins += nl.gate(id).fanins.size();
  fanins_.reserve(total_fanins);
  for (int id = 0; id < n; ++id) {
    const Gate& g = nl.gate(id);
    type_[static_cast<std::size_t>(id)] = g.type;
    fanin_begin_[static_cast<std::size_t>(id)] =
        static_cast<int>(fanins_.size());
    for (int f : g.fanins) fanins_.push_back(f);
    if (g.type == GateType::kInput)
      input_index_[static_cast<std::size_t>(id)] = inputs_seen++;
  }
  fanin_begin_[static_cast<std::size_t>(n)] = static_cast<int>(fanins_.size());
}

template <class V>
void LogicSimT<V>::clear_input_x() {
  if (!input_x_set_) return;
  std::fill(input_x_.begin(), input_x_.end(), Lanes::zero());
  input_x_set_ = false;
}

template <class V>
bool LogicSimT<V>::inputs_have_x() {
  if (!input_x_set_) return false;
  V any = Lanes::zero();
  for (const V& w : input_x_) any |= w;
  if (Lanes::none(any)) input_x_set_ = false;  // flag was conservative
  return Lanes::any(any);
}

template <class V>
void LogicSimT<V>::seed_xvals(const std::vector<V>* x) {
  if (x == nullptr || x->empty()) {
    if (!x_clean_) {
      std::fill(xvals_.begin(), xvals_.end(), Lanes::zero());
      x_clean_ = true;
    }
    return;
  }
  xvals_ = *x;
  x_clean_ = false;
}

template <class V>
int LogicSimT<V>::run_cone_overlay(const FaultSpec& fault,
                                   const std::vector<int>& cone, const V* base,
                                   const V* base_x) {
  (void)cone;  // the event queue discovers the dirty frontier itself
  overlay_prepare();

  ++stats_.overlay_calls;
  heap_.clear();
  const auto push_fanouts = [this](int g) {
    const int begin = fanout_begin_[static_cast<std::size_t>(g)];
    const int end = fanout_begin_[static_cast<std::size_t>(g) + 1];
    for (int p = begin; p < end; ++p) {
      const int out = fanouts_[static_cast<std::size_t>(p)];
      std::uint32_t& stamp = queue_stamp_[static_cast<std::size_t>(out)];
      if (stamp == overlay_epoch_) continue;
      stamp = overlay_epoch_;
      ++stats_.event_pushes;
      heap_push(out);
    }
  };

  // A gate is "changed" when its (value, xmask) pair differs from the base.
  // Comparing the value plane alone would lose defined->X transitions.
  const auto base_xv = [base_x](int g) {
    return base_x == nullptr ? LaneOps<V>::zero() : base_x[g];
  };
  const auto vx_overlaid = [this, base, base_x](int, int g) {
    return std::pair<V, V>{overlay_value(g, base), overlay_xval(g, base_x)};
  };
  const auto stamp_if_changed = [&](int g, const V& v, const V& x) {
    if (v != base[g] || x != base_xv(g)) {
      overlay_stamp(g, v, x);
      return 1;
    }
    return 0;
  };

  int changed = 0;
  int site = -1, site2 = -1;  // forced gates: never re-evaluated from fanins
  switch (fault.kind) {
    case FaultSpec::Kind::kNone:
      return 0;
    case FaultSpec::Kind::kStuckGate: {
      site = fault.gate;
      const V forced = fault.value ? Lanes::ones() : Lanes::zero();
      changed += stamp_if_changed(site, forced, Lanes::zero());
      break;
    }
    case FaultSpec::Kind::kStuckPin: {
      site = fault.gate;
      const V pin_v = fault.value ? Lanes::ones() : Lanes::zero();
      // Force exactly the faulted pin position: a branch fault must not
      // force sibling pins fed by the same driver.
      const auto [v, x] = eval_gate_x_with(site, [&](int p, int g) {
        return p == fault.gate2_or_pin
                   ? std::pair<V, V>{pin_v, Lanes::zero()}
                   : vx_overlaid(p, g);
      });
      changed += stamp_if_changed(site, v, x);
      break;
    }
    case FaultSpec::Kind::kBridge: {
      // base holds the raw (pre-bridge) fault-free line values; the two
      // bridged gates are forced here and never re-evaluated from fanins.
      site = fault.gate;
      site2 = fault.gate2_or_pin;
      const auto [wv, wx] = detail::wired3(fault.value, base[site],
                                           base_xv(site), base[site2],
                                           base_xv(site2));
      changed += stamp_if_changed(site, wv, wx);
      changed += stamp_if_changed(site2, wv, wx);
      break;
    }
  }
  if (changed == 0) {
    ++stats_.overlay_unexcited;
    return 0;  // fault not excited: nothing can propagate
  }

  // Propagate the change wavefront. Ids are topological (fanins smaller),
  // so the min-heap pops gates in evaluation order: by the time a gate pops,
  // every fanin that can change already has, and one evaluation is exact.
  if (overlay_stamp_[static_cast<std::size_t>(site)] == overlay_epoch_)
    push_fanouts(site);
  if (site2 >= 0 &&
      overlay_stamp_[static_cast<std::size_t>(site2)] == overlay_epoch_)
    push_fanouts(site2);
  if (base_x == nullptr) {
    // Two-valued fast path: the overwhelmingly common case (no X anywhere
    // in the batch). Identical work to the X-aware loop minus the X plane.
    const auto overlaid = [this, base](int, int g) {
      return overlay_value(g, base);
    };
    while (!heap_.empty()) {
      const int id = heap_pop();
      ++stats_.event_pops;
      if (id == site || id == site2) continue;
      const V v = eval_gate_with(id, overlaid);
      if (v != base[id]) {
        overlay_stamp(id, v, Lanes::zero());
        ++changed;
        push_fanouts(id);
      }
    }
  } else {
    while (!heap_.empty()) {
      const int id = heap_pop();
      ++stats_.event_pops;
      if (id == site || id == site2) continue;
      const auto [v, x] = eval_gate_x_with(id, vx_overlaid);
      if (v != base[id] || x != base_x[id]) {
        overlay_stamp(id, v, x);
        ++changed;
        push_fanouts(id);
      }
    }
  }
  stats_.gates_changed += static_cast<std::uint64_t>(changed);
  return changed;
}

template <class V>
bool LogicSimT<V>::fault_excited(const FaultSpec& fault, const V* base,
                                 const V* base_x) const {
  const auto base_xv = [base_x](int g) {
    return base_x == nullptr ? LaneOps<V>::zero() : base_x[g];
  };
  switch (fault.kind) {
    case FaultSpec::Kind::kNone:
      return false;
    case FaultSpec::Kind::kStuckGate: {
      const int site = fault.gate;
      const V forced = fault.value ? Lanes::ones() : Lanes::zero();
      return forced != base[site] || Lanes::any(base_xv(site));
    }
    case FaultSpec::Kind::kStuckPin: {
      const int site = fault.gate;
      const V pin_v = fault.value ? Lanes::ones() : Lanes::zero();
      if (base_x == nullptr) {
        const V v = eval_gate_with(site, [&](int p, int g) {
          return p == fault.gate2_or_pin ? pin_v : base[g];
        });
        return v != base[site];
      }
      const auto [v, x] = eval_gate_x_with(site, [&](int p, int g) {
        return p == fault.gate2_or_pin
                   ? std::pair<V, V>{pin_v, Lanes::zero()}
                   : std::pair<V, V>{base[g], base_x[g]};
      });
      return v != base[site] || x != base_xv(site);
    }
    case FaultSpec::Kind::kBridge: {
      const int site = fault.gate;
      const int site2 = fault.gate2_or_pin;
      // Two-valued wired resolution yields a defined value in
      // {v1 & v2, v1 | v2}, which differs from a line exactly when the two
      // lines disagree — one XOR decides excitation for both bridge types.
      if (base_x == nullptr) return Lanes::any(base[site] ^ base[site2]);
      const auto [wv, wx] =
          detail::wired3(fault.value, base[site], base_xv(site), base[site2],
                         base_xv(site2));
      return wv != base[site] || wx != base_xv(site) || wv != base[site2] ||
             wx != base_xv(site2);
    }
  }
  return false;
}

template <class V>
void LogicSimT<V>::overlay_prepare() {
  if (overlay_.empty()) {
    const std::size_t n = static_cast<std::size_t>(nl_->num_gates());
    overlay_.assign(n, Lanes::zero());
    overlay_x_.assign(n, Lanes::zero());
    overlay_stamp_.assign(n, 0);
    queue_stamp_.assign(n, 0);
    overlay_epoch_ = 0;
    // Fanout CSR = transpose of the fanin CSR (counting sort by target).
    fanout_begin_.assign(n + 1, 0);
    for (int f : fanins_) ++fanout_begin_[static_cast<std::size_t>(f) + 1];
    for (std::size_t g = 0; g < n; ++g)
      fanout_begin_[g + 1] += fanout_begin_[g];
    fanouts_.resize(fanins_.size());
    std::vector<int> cursor(fanout_begin_.begin(), fanout_begin_.end() - 1);
    for (std::size_t id = 0; id < n; ++id) {
      const int begin = fanin_begin_[id];
      const int end = fanin_begin_[id + 1];
      for (int p = begin; p < end; ++p) {
        const std::size_t f =
            static_cast<std::size_t>(fanins_[static_cast<std::size_t>(p)]);
        fanouts_[static_cast<std::size_t>(cursor[f]++)] = static_cast<int>(id);
      }
    }
  }
  if (++overlay_epoch_ == 0) {  // epoch wrapped: stale stamps could collide
    std::fill(overlay_stamp_.begin(), overlay_stamp_.end(), 0u);
    std::fill(queue_stamp_.begin(), queue_stamp_.end(), 0u);
    overlay_epoch_ = 1;
  }
}

template <class V>
void LogicSimT<V>::eval_span(int first_gate, int skip_a, int skip_b) {
  const int n = nl_->num_gates();
  for (int id = first_gate; id < n; ++id) {
    if (id == skip_a || id == skip_b) continue;
    values_[static_cast<std::size_t>(id)] = eval_gate(id);
  }
}

template <class V>
void LogicSimT<V>::eval_span_x(int first_gate, int skip_a, int skip_b) {
  const int n = nl_->num_gates();
  for (int id = first_gate; id < n; ++id) {
    if (id == skip_a || id == skip_b) continue;
    const auto [v, x] = eval_gate_x(id);
    values_[static_cast<std::size_t>(id)] = v;
    xvals_[static_cast<std::size_t>(id)] = x;
  }
}

template <class V>
void LogicSimT<V>::run_cone(const FaultSpec& fault,
                            const std::vector<int>& cone) {
  if (x_clean_) {
    switch (fault.kind) {
      case FaultSpec::Kind::kNone:
        for (int id : cone)
          values_[static_cast<std::size_t>(id)] = eval_gate(id);
        return;

      case FaultSpec::Kind::kStuckGate:
        for (int id : cone) {
          values_[static_cast<std::size_t>(id)] =
              id == fault.gate ? (fault.value ? Lanes::ones() : Lanes::zero())
                               : eval_gate(id);
        }
        return;

      case FaultSpec::Kind::kStuckPin: {
        const V pin_v = fault.value ? Lanes::ones() : Lanes::zero();
        for (int id : cone) {
          values_[static_cast<std::size_t>(id)] =
              id == fault.gate
                  ? eval_gate_with(
                        id,
                        [&](int p, int g) {
                          return p == fault.gate2_or_pin
                                     ? pin_v
                                     : values_[static_cast<std::size_t>(g)];
                        })
                  : eval_gate(id);
        }
        return;
      }

      case FaultSpec::Kind::kBridge: {
        // Seeded values are the fault-free (raw) line values; the cone must
        // contain the downstream of both bridged gates but not the gates
        // themselves (they are forced, never re-evaluated).
        const int g1 = fault.gate;
        const int g2 = fault.gate2_or_pin;
        const V v1 = values_[static_cast<std::size_t>(g1)];
        const V v2 = values_[static_cast<std::size_t>(g2)];
        const V wired = fault.value ? (v1 | v2) : (v1 & v2);
        values_[static_cast<std::size_t>(g1)] = wired;
        values_[static_cast<std::size_t>(g2)] = wired;
        for (int id : cone)
          values_[static_cast<std::size_t>(id)] = eval_gate(id);
        return;
      }
    }
    return;
  }

  // Three-valued cone re-evaluation on top of seeded (values, xvals).
  const auto set = [this](int id, std::pair<V, V> vx) {
    values_[static_cast<std::size_t>(id)] = vx.first;
    xvals_[static_cast<std::size_t>(id)] = vx.second;
  };
  switch (fault.kind) {
    case FaultSpec::Kind::kNone:
      for (int id : cone) set(id, eval_gate_x(id));
      return;

    case FaultSpec::Kind::kStuckGate: {
      const V forced = fault.value ? Lanes::ones() : Lanes::zero();
      for (int id : cone) {
        if (id == fault.gate)
          set(id, {forced, Lanes::zero()});
        else
          set(id, eval_gate_x(id));
      }
      return;
    }

    case FaultSpec::Kind::kStuckPin: {
      const V pin_v = fault.value ? Lanes::ones() : Lanes::zero();
      for (int id : cone) {
        if (id == fault.gate) {
          set(id, eval_gate_x_with(id, [&](int p, int g) {
                return p == fault.gate2_or_pin
                           ? std::pair<V, V>{pin_v, Lanes::zero()}
                           : std::pair<V, V>{
                                 values_[static_cast<std::size_t>(g)],
                                 xvals_[static_cast<std::size_t>(g)]};
              }));
        } else {
          set(id, eval_gate_x(id));
        }
      }
      return;
    }

    case FaultSpec::Kind::kBridge: {
      const int g1 = fault.gate;
      const int g2 = fault.gate2_or_pin;
      const auto [wv, wx] = detail::wired3(
          fault.value, values_[static_cast<std::size_t>(g1)],
          xvals_[static_cast<std::size_t>(g1)],
          values_[static_cast<std::size_t>(g2)],
          xvals_[static_cast<std::size_t>(g2)]);
      set(g1, {wv, wx});
      set(g2, {wv, wx});
      for (int id : cone) set(id, eval_gate_x(id));
      return;
    }
  }
}

template <class V>
void LogicSimT<V>::override_and_propagate(int gate, const V& value) {
  // Two-valued by design: only the transition-delay simulator uses this,
  // and it never applies X-bearing patterns.
  values_[static_cast<std::size_t>(gate)] = value;
  eval_span(gate + 1, gate, -1);
}

template <class V>
void LogicSimT<V>::run(const FaultSpec& fault) {
  if (inputs_have_x()) {
    x_clean_ = false;
    run3(fault);
    return;
  }
  if (!x_clean_) {
    std::fill(xvals_.begin(), xvals_.end(), Lanes::zero());
    x_clean_ = true;
  }
  run2(fault);
}

template <class V>
void LogicSimT<V>::run2(const FaultSpec& fault) {
  switch (fault.kind) {
    case FaultSpec::Kind::kNone:
      eval_span(0, -1, -1);
      return;

    case FaultSpec::Kind::kStuckGate:
      eval_span(0, fault.gate, -1);
      values_[static_cast<std::size_t>(fault.gate)] =
          fault.value ? Lanes::ones() : Lanes::zero();
      eval_span(fault.gate + 1, -1, -1);
      return;

    case FaultSpec::Kind::kStuckPin: {
      // Evaluate up to the faulted gate, patch exactly the faulted pin
      // position (a duplicated driver's sibling pins stay fault-free, the
      // same per-pin semantics PODEM uses), continue downstream.
      eval_span(0, fault.gate, -1);
      const V pin_v = fault.value ? Lanes::ones() : Lanes::zero();
      values_[static_cast<std::size_t>(fault.gate)] =
          eval_gate_with(fault.gate, [&](int p, int g) {
            return p == fault.gate2_or_pin
                       ? pin_v
                       : values_[static_cast<std::size_t>(g)];
          });
      eval_span(fault.gate + 1, -1, -1);
      return;
    }

    case FaultSpec::Kind::kBridge: {
      // Non-feedback bridge: neither gate is in the other's fanin cone, so
      // the raw (pre-bridge) values from a fault-free sweep are exact.
      // Force both lines to the wired value and re-evaluate downstream;
      // one partial sweep suffices because all transitive fanouts have
      // larger ids (topological storage).
      const int g1 = fault.gate;
      const int g2 = fault.gate2_or_pin;
      require(g1 >= 0 && g2 >= 0 && g1 != g2,
              "bridge needs two distinct gates");
      eval_span(0, -1, -1);
      const V v1 = values_[static_cast<std::size_t>(g1)];
      const V v2 = values_[static_cast<std::size_t>(g2)];
      const V wired = fault.value ? (v1 | v2) : (v1 & v2);
      values_[static_cast<std::size_t>(g1)] = wired;
      values_[static_cast<std::size_t>(g2)] = wired;
      eval_span(std::min(g1, g2) + 1, g1, g2);
      return;
    }
  }
}

template <class V>
void LogicSimT<V>::run3(const FaultSpec& fault) {
  switch (fault.kind) {
    case FaultSpec::Kind::kNone:
      eval_span_x(0, -1, -1);
      return;

    case FaultSpec::Kind::kStuckGate:
      eval_span_x(0, fault.gate, -1);
      values_[static_cast<std::size_t>(fault.gate)] =
          fault.value ? Lanes::ones() : Lanes::zero();
      xvals_[static_cast<std::size_t>(fault.gate)] = Lanes::zero();
      eval_span_x(fault.gate + 1, -1, -1);
      return;

    case FaultSpec::Kind::kStuckPin: {
      eval_span_x(0, fault.gate, -1);
      const V pin_v = fault.value ? Lanes::ones() : Lanes::zero();
      const auto [v, x] = eval_gate_x_with(fault.gate, [&](int p, int g) {
        return p == fault.gate2_or_pin
                   ? std::pair<V, V>{pin_v, Lanes::zero()}
                   : std::pair<V, V>{values_[static_cast<std::size_t>(g)],
                                     xvals_[static_cast<std::size_t>(g)]};
      });
      values_[static_cast<std::size_t>(fault.gate)] = v;
      xvals_[static_cast<std::size_t>(fault.gate)] = x;
      eval_span_x(fault.gate + 1, -1, -1);
      return;
    }

    case FaultSpec::Kind::kBridge: {
      const int g1 = fault.gate;
      const int g2 = fault.gate2_or_pin;
      require(g1 >= 0 && g2 >= 0 && g1 != g2,
              "bridge needs two distinct gates");
      eval_span_x(0, -1, -1);
      const auto [wv, wx] = detail::wired3(
          fault.value, values_[static_cast<std::size_t>(g1)],
          xvals_[static_cast<std::size_t>(g1)],
          values_[static_cast<std::size_t>(g2)],
          xvals_[static_cast<std::size_t>(g2)]);
      values_[static_cast<std::size_t>(g1)] = wv;
      xvals_[static_cast<std::size_t>(g1)] = wx;
      values_[static_cast<std::size_t>(g2)] = wv;
      xvals_[static_cast<std::size_t>(g2)] = wx;
      eval_span_x(std::min(g1, g2) + 1, g1, g2);
      return;
    }
  }
}

/// The portable 64-pattern simulator every existing caller uses; explicitly
/// instantiated (portably compiled) in logic_sim.cpp. Wider instantiations
/// live only in the per-width fault-sim engine TUs.
using LogicSim = LogicSimT<Word>;
extern template class LogicSimT<Word>;

}  // namespace fstg
