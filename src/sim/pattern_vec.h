#pragma once

#include <bit>
#include <cstdint>

namespace fstg {

/// One 64-pattern lane word — the portable simulation width and the unit
/// every wider vector is built from.
using Word = std::uint64_t;
inline constexpr int kWordBits = 64;

/// A compile-time-width bundle of lane words: 64 patterns per component
/// word, evaluated with plain per-component loops that the compiler turns
/// into AVX2 (NW = 4) or AVX-512 (NW = 8) vector instructions when the
/// translation unit is built with the matching -m flags.
///
/// ISA discipline: PatternVec<NW> (NW > 1) must only be *instantiated* in
/// the per-width engine translation units (src/fault/fault_sim_w*.cpp),
/// which are the only TUs compiled with wider-than-baseline ISA flags.
/// Everything else goes through the runtime-dispatched entry points in
/// fault_sim.h, so no AVX code can leak into portably-compiled objects.
template <int NW>
struct PatternVec {
  static_assert(NW >= 2, "use plain Word for the 64-bit lane width");
  Word w[NW];

  static constexpr int kBits = NW * kWordBits;

  friend PatternVec operator&(PatternVec a, const PatternVec& b) {
    for (int i = 0; i < NW; ++i) a.w[i] &= b.w[i];
    return a;
  }
  friend PatternVec operator|(PatternVec a, const PatternVec& b) {
    for (int i = 0; i < NW; ++i) a.w[i] |= b.w[i];
    return a;
  }
  friend PatternVec operator^(PatternVec a, const PatternVec& b) {
    for (int i = 0; i < NW; ++i) a.w[i] ^= b.w[i];
    return a;
  }
  friend PatternVec operator~(PatternVec a) {
    for (int i = 0; i < NW; ++i) a.w[i] = ~a.w[i];
    return a;
  }
  PatternVec& operator&=(const PatternVec& o) {
    for (int i = 0; i < NW; ++i) w[i] &= o.w[i];
    return *this;
  }
  PatternVec& operator|=(const PatternVec& o) {
    for (int i = 0; i < NW; ++i) w[i] |= o.w[i];
    return *this;
  }
  PatternVec& operator^=(const PatternVec& o) {
    for (int i = 0; i < NW; ++i) w[i] ^= o.w[i];
    return *this;
  }
  friend bool operator==(const PatternVec&, const PatternVec&) = default;
};

/// Uniform lane operations over Word and PatternVec<NW>, so the simulator
/// templates read identically at every width. All members are branch-light
/// and inline; the Word specialization compiles to the exact instructions
/// the pre-SIMD simulator used.
template <class V>
struct LaneOps;

template <>
struct LaneOps<Word> {
  static constexpr int kBits = kWordBits;
  static constexpr int kWords = 1;

  static Word zero() { return 0; }
  static Word ones() { return ~Word{0}; }
  static bool any(Word v) { return v != 0; }
  static bool none(Word v) { return v == 0; }
  static bool test(const Word& v, int lane) { return (v >> lane) & 1u; }
  static void set(Word& v, int lane) { v |= Word{1} << lane; }
  static Word word(const Word& v, int i) {
    (void)i;
    return v;
  }
  /// Lanes 0..n-1 set (n in 1..kBits).
  static Word low_mask(int n) {
    return n >= kWordBits ? ~Word{0} : (Word{1} << n) - 1;
  }
  /// Lowest set lane; v must be nonzero.
  static int first_lane(Word v) { return std::countr_zero(v); }
  static int popcount(Word v) { return std::popcount(v); }
  /// Lanes strictly below the lowest set lane (all lanes if none set).
  static Word below_lowest(Word v) {
    if (v == 0) return ~Word{0};
    return (v & (~v + 1)) - 1;
  }
};

template <int NW>
struct LaneOps<PatternVec<NW>> {
  using V = PatternVec<NW>;
  static constexpr int kBits = V::kBits;
  static constexpr int kWords = NW;

  static V zero() {
    V v{};
    return v;
  }
  static V ones() {
    V v;
    for (int i = 0; i < NW; ++i) v.w[i] = ~Word{0};
    return v;
  }
  static bool any(const V& v) {
    Word acc = 0;
    for (int i = 0; i < NW; ++i) acc |= v.w[i];
    return acc != 0;
  }
  static bool none(const V& v) { return !any(v); }
  static bool test(const V& v, int lane) {
    return (v.w[lane / kWordBits] >> (lane % kWordBits)) & 1u;
  }
  static void set(V& v, int lane) {
    v.w[lane / kWordBits] |= Word{1} << (lane % kWordBits);
  }
  static Word word(const V& v, int i) { return v.w[i]; }
  static V low_mask(int n) {
    V v{};
    for (int i = 0; i < NW && n > 0; ++i, n -= kWordBits)
      v.w[i] = n >= kWordBits ? ~Word{0} : (Word{1} << n) - 1;
    return v;
  }
  static int first_lane(const V& v) {
    for (int i = 0; i < NW; ++i)
      if (v.w[i] != 0) return i * kWordBits + std::countr_zero(v.w[i]);
    return kBits;  // unreachable for nonzero v
  }
  static int popcount(const V& v) {
    int n = 0;
    for (int i = 0; i < NW; ++i) n += std::popcount(v.w[i]);
    return n;
  }
  static V below_lowest(const V& v) {
    V out;
    for (int i = 0; i < NW; ++i) {
      if (v.w[i] != 0) {
        out.w[i] = (v.w[i] & (~v.w[i] + 1)) - 1;
        for (int j = i + 1; j < NW; ++j) out.w[j] = 0;
        return out;
      }
      out.w[i] = ~Word{0};
    }
    return out;  // no lane set: all lanes
  }
};

/// Visit every set lane of `v` in ascending lane order: fn(int lane).
template <class V, class Fn>
inline void for_each_lane(const V& v, Fn&& fn) {
  using O = LaneOps<V>;
  for (int i = 0; i < O::kWords; ++i) {
    for (Word w = O::word(v, i); w != 0; w &= w - 1)
      fn(i * kWordBits + std::countr_zero(w));
  }
}

}  // namespace fstg
