#include "fsm/isfsm.h"

#include <algorithm>

#include "base/error.h"

namespace fstg {

namespace {

/// Minterm-level view of an ISFSM: per (state, input combination) the
/// specified next state (-1 if unspecified) and output care/value masks.
struct Expanded {
  int num_states = 0;
  std::uint32_t nic = 0;
  std::vector<int> next;                 ///< [state*nic + ic], -1 unspecified
  std::vector<std::uint32_t> out_value;  ///< specified bits' values
  std::vector<std::uint32_t> out_care;   ///< 1 = bit specified

  std::size_t at(int s, std::uint32_t ic) const {
    return static_cast<std::size_t>(s) * nic + ic;
  }
};

Expanded expand(const Kiss2Fsm& fsm) {
  require(fsm.num_inputs <= 10,
          "reduce_isfsm: supported up to 10 input lines");
  fsm.check_deterministic();
  Expanded e;
  e.num_states = fsm.num_states();
  e.nic = 1u << fsm.num_inputs;
  const std::size_t total = static_cast<std::size_t>(e.num_states) * e.nic;
  e.next.assign(total, -1);
  e.out_value.assign(total, 0);
  e.out_care.assign(total, 0);

  for (const auto& row : fsm.rows) {
    const int ps = fsm.state_index(row.present);
    const int ns = fsm.state_index(row.next);
    std::uint32_t value = 0, care = 0;
    for (int b = 0; b < fsm.num_outputs; ++b) {
      const char c = row.output[static_cast<std::size_t>(fsm.num_outputs - 1 - b)];
      if (c == '-') continue;
      care |= 1u << b;
      if (c == '1') value |= 1u << b;
    }
    // Enumerate the row's input minterms (MSB-first fields).
    std::uint32_t fixed_value = 0;
    std::vector<int> free_bits;
    for (int b = 0; b < fsm.num_inputs; ++b) {
      const char c = row.input[static_cast<std::size_t>(fsm.num_inputs - 1 - b)];
      if (c == '-')
        free_bits.push_back(b);
      else if (c == '1')
        fixed_value |= 1u << b;
    }
    for (std::uint32_t m = 0; m < (1u << free_bits.size()); ++m) {
      std::uint32_t ic = fixed_value;
      for (std::size_t k = 0; k < free_bits.size(); ++k)
        if ((m >> k) & 1u) ic |= 1u << free_bits[k];
      const std::size_t idx = e.at(ps, ic);
      e.next[idx] = ns;
      e.out_value[idx] |= value;
      e.out_care[idx] |= care;
    }
  }
  return e;
}

std::vector<std::vector<bool>> compatibility_from(const Expanded& e) {
  const int n = e.num_states;
  std::vector<std::vector<bool>> compatible(
      static_cast<std::size_t>(n),
      std::vector<bool>(static_cast<std::size_t>(n), true));

  // Seed: output conflicts on co-specified entries.
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      for (std::uint32_t ic = 0; ic < e.nic; ++ic) {
        const std::size_t ia = e.at(a, ic), ib = e.at(b, ic);
        if (e.next[ia] < 0 || e.next[ib] < 0) continue;
        const std::uint32_t care = e.out_care[ia] & e.out_care[ib];
        if ((e.out_value[ia] ^ e.out_value[ib]) & care) {
          compatible[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = false;
          compatible[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = false;
          break;
        }
      }
    }
  }

  // Fixpoint: a pair is incompatible if some co-specified input leads to an
  // incompatible pair.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        if (!compatible[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]) continue;
        for (std::uint32_t ic = 0; ic < e.nic; ++ic) {
          const int na = e.next[e.at(a, ic)];
          const int nb = e.next[e.at(b, ic)];
          if (na < 0 || nb < 0 || na == nb) continue;
          const int lo = std::min(na, nb), hi = std::max(na, nb);
          if (!compatible[static_cast<std::size_t>(lo)][static_cast<std::size_t>(hi)]) {
            compatible[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = false;
            compatible[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = false;
            changed = true;
            break;
          }
        }
      }
    }
  }
  return compatible;
}

}  // namespace

std::vector<std::vector<bool>> compatibility_matrix(const Kiss2Fsm& fsm) {
  return compatibility_from(expand(fsm));
}

IsfsmReduction reduce_isfsm(const Kiss2Fsm& fsm) {
  const Expanded e = expand(fsm);
  const std::vector<std::vector<bool>> compatible = compatibility_from(e);
  const int n = e.num_states;

  IsfsmReduction result;
  result.block_of_state.assign(static_cast<std::size_t>(n), -1);

  // Greedy clique growth in state order.
  std::vector<std::vector<int>> blocks;
  for (int s = 0; s < n; ++s) {
    int placed = -1;
    for (std::size_t b = 0; b < blocks.size() && placed < 0; ++b) {
      bool ok = true;
      for (int member : blocks[b])
        if (!compatible[static_cast<std::size_t>(member)][static_cast<std::size_t>(s)]) ok = false;
      if (ok) placed = static_cast<int>(b);
    }
    if (placed < 0) {
      blocks.push_back({});
      placed = static_cast<int>(blocks.size()) - 1;
    }
    blocks[static_cast<std::size_t>(placed)].push_back(s);
    result.block_of_state[static_cast<std::size_t>(s)] = placed;
  }

  // Closure repair: a block's specified next states under one input must
  // land in a single block; otherwise evict the offender into a new block.
  bool stable = false;
  while (!stable) {
    stable = true;
    for (std::size_t b = 0; b < blocks.size() && stable; ++b) {
      for (std::uint32_t ic = 0; ic < e.nic && stable; ++ic) {
        int target = -1;
        for (int member : blocks[b]) {
          const int ns = e.next[e.at(member, ic)];
          if (ns < 0) continue;
          const int nb = result.block_of_state[static_cast<std::size_t>(ns)];
          if (target < 0) {
            target = nb;
          } else if (nb != target) {
            // Evict this member to a fresh singleton block.
            const int evicted = member;
            auto& vec = blocks[b];
            vec.erase(std::find(vec.begin(), vec.end(), evicted));
            blocks.push_back({evicted});
            result.block_of_state[static_cast<std::size_t>(evicted)] =
                static_cast<int>(blocks.size()) - 1;
            stable = false;
            break;
          }
        }
      }
    }
  }

  // Drop empty blocks and renumber densely.
  std::vector<int> renumber(blocks.size(), -1);
  int next_id = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b)
    if (!blocks[b].empty()) renumber[b] = next_id++;
  for (int s = 0; s < n; ++s)
    result.block_of_state[static_cast<std::size_t>(s)] =
        renumber[static_cast<std::size_t>(result.block_of_state[static_cast<std::size_t>(s)])];
  result.num_blocks = next_id;

  // Emit the reduced machine, minterm-level rows over class members.
  Kiss2Fsm& red = result.reduced;
  red.name = fsm.name + "_red";
  red.num_inputs = fsm.num_inputs;
  red.num_outputs = fsm.num_outputs;
  auto class_label = [](int b) { return "c" + std::to_string(b); };
  for (int b = 0; b < result.num_blocks; ++b) red.intern_state(class_label(b));
  if (!fsm.reset_state.empty()) {
    const int rs = fsm.state_index(fsm.reset_state);
    red.reset_state = class_label(result.block_of_state[static_cast<std::size_t>(rs)]);
  }

  auto binary_field = [](std::uint32_t v, std::uint32_t care, int bits) {
    std::string s(static_cast<std::size_t>(bits), '-');
    for (int bit = 0; bit < bits; ++bit) {
      if (!((care >> bit) & 1u)) continue;
      s[static_cast<std::size_t>(bits - 1 - bit)] = ((v >> bit) & 1u) ? '1' : '0';
    }
    return s;
  };

  for (int b = 0; b < result.num_blocks; ++b) {
    for (std::uint32_t ic = 0; ic < e.nic; ++ic) {
      int target = -1;
      std::uint32_t value = 0, care = 0;
      for (int s = 0; s < n; ++s) {
        if (result.block_of_state[static_cast<std::size_t>(s)] != b) continue;
        const std::size_t idx = e.at(s, ic);
        if (e.next[idx] < 0) continue;
        target = result.block_of_state[static_cast<std::size_t>(e.next[idx])];
        value |= e.out_value[idx];
        care |= e.out_care[idx];
      }
      if (target < 0) continue;  // unspecified for the whole class
      Kiss2Row row;
      std::string in(static_cast<std::size_t>(fsm.num_inputs), '0');
      for (int bit = 0; bit < fsm.num_inputs; ++bit)
        if ((ic >> bit) & 1u)
          in[static_cast<std::size_t>(fsm.num_inputs - 1 - bit)] = '1';
      row.input = in;
      row.present = class_label(b);
      row.next = class_label(target);
      row.output = binary_field(value, care, fsm.num_outputs);
      red.rows.push_back(std::move(row));
    }
  }
  return result;
}

}  // namespace fstg
