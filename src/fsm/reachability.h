#pragma once

#include "base/bitvec.h"
#include "fsm/state_table.h"

namespace fstg {

/// States reachable from `from` (inclusive) under any input sequence.
BitVec reachable_states(const StateTable& table, int from);

/// True if every state can reach every other state.
bool strongly_connected(const StateTable& table);

/// Shortest input sequence from `from` to `to` (BFS); empty if from == to.
/// Returns false if unreachable.
bool shortest_path(const StateTable& table, int from, int to,
                   std::vector<std::uint32_t>& seq_out);

}  // namespace fstg
