#include "fsm/reachability.h"

#include <algorithm>
#include <deque>

#include "base/error.h"

namespace fstg {

BitVec reachable_states(const StateTable& table, int from) {
  require(from >= 0 && from < table.num_states(), "reachable: bad state");
  BitVec seen(static_cast<std::size_t>(table.num_states()));
  std::deque<int> queue{from};
  seen.set(static_cast<std::size_t>(from));
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    for (std::uint32_t ic = 0; ic < table.num_input_combos(); ++ic) {
      int t = table.next(s, ic);
      if (!seen.test(static_cast<std::size_t>(t))) {
        seen.set(static_cast<std::size_t>(t));
        queue.push_back(t);
      }
    }
  }
  return seen;
}

bool strongly_connected(const StateTable& table) {
  const std::size_t n = static_cast<std::size_t>(table.num_states());
  // Forward reachability from state 0 must cover everything...
  if (reachable_states(table, 0).count() != n) return false;
  // ...and every state must reach state 0. Check via reverse BFS.
  std::vector<std::vector<int>> preds(n);
  for (int s = 0; s < table.num_states(); ++s)
    for (std::uint32_t ic = 0; ic < table.num_input_combos(); ++ic)
      preds[static_cast<std::size_t>(table.next(s, ic))].push_back(s);
  for (auto& p : preds) {
    std::sort(p.begin(), p.end());
    p.erase(std::unique(p.begin(), p.end()), p.end());
  }
  BitVec seen(n);
  std::deque<int> queue{0};
  seen.set(0);
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    for (int p : preds[static_cast<std::size_t>(s)]) {
      if (!seen.test(static_cast<std::size_t>(p))) {
        seen.set(static_cast<std::size_t>(p));
        queue.push_back(p);
      }
    }
  }
  return seen.count() == n;
}

bool shortest_path(const StateTable& table, int from, int to,
                   std::vector<std::uint32_t>& seq_out) {
  require(from >= 0 && from < table.num_states(), "shortest_path: bad from");
  require(to >= 0 && to < table.num_states(), "shortest_path: bad to");
  seq_out.clear();
  if (from == to) return true;

  const std::size_t n = static_cast<std::size_t>(table.num_states());
  std::vector<int> parent(n, -1);
  std::vector<std::uint32_t> via(n, 0);
  std::deque<int> queue{from};
  parent[static_cast<std::size_t>(from)] = from;
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    for (std::uint32_t ic = 0; ic < table.num_input_combos(); ++ic) {
      int t = table.next(s, ic);
      if (parent[static_cast<std::size_t>(t)] >= 0) continue;
      parent[static_cast<std::size_t>(t)] = s;
      via[static_cast<std::size_t>(t)] = ic;
      if (t == to) {
        for (int cur = to; cur != from;
             cur = parent[static_cast<std::size_t>(cur)])
          seq_out.push_back(via[static_cast<std::size_t>(cur)]);
        std::reverse(seq_out.begin(), seq_out.end());
        return true;
      }
      queue.push_back(t);
    }
  }
  return false;
}

}  // namespace fstg
