#include "fsm/minimize.h"

#include <algorithm>
#include <map>
#include <utility>

#include "base/error.h"

namespace fstg {

MinimizationResult minimize(const StateTable& table) {
  const int n = table.num_states();
  const std::uint32_t nic = table.num_input_combos();

  // Initial partition: by full output row.
  std::vector<int> block(static_cast<std::size_t>(n));
  {
    std::map<std::vector<std::uint32_t>, int> index;
    for (int s = 0; s < n; ++s) {
      std::vector<std::uint32_t> row(nic);
      for (std::uint32_t ic = 0; ic < nic; ++ic) row[ic] = table.output(s, ic);
      auto [it, inserted] =
          index.emplace(std::move(row), static_cast<int>(index.size()));
      block[static_cast<std::size_t>(s)] = it->second;
    }
  }

  // Refine: split blocks whose members disagree on the blocks of their
  // successors. Iterate to fixpoint (O(n^2 * nic) worst case, fine here).
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<std::pair<int, std::vector<int>>, int> index;
    std::vector<int> next_block(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      std::vector<int> succ(nic);
      for (std::uint32_t ic = 0; ic < nic; ++ic)
        succ[ic] = block[static_cast<std::size_t>(table.next(s, ic))];
      auto key = std::make_pair(block[static_cast<std::size_t>(s)],
                                std::move(succ));
      auto [it, inserted] =
          index.emplace(std::move(key), static_cast<int>(index.size()));
      next_block[static_cast<std::size_t>(s)] = it->second;
    }
    if (static_cast<int>(index.size()) !=
        1 + *std::max_element(block.begin(), block.end())) {
      changed = true;
    }
    // Detect change robustly: compare partitions.
    if (next_block != block) changed = true;
    block = std::move(next_block);
    if (!changed) break;
  }

  MinimizationResult result;
  result.block_of_state = block;
  result.num_blocks = 1 + *std::max_element(block.begin(), block.end());

  StateTable reduced(table.input_bits(), table.output_bits(),
                     result.num_blocks);
  reduced.name = table.name + "_min";
  std::vector<int> representative(static_cast<std::size_t>(result.num_blocks),
                                  -1);
  for (int s = 0; s < n; ++s) {
    int b = block[static_cast<std::size_t>(s)];
    if (representative[static_cast<std::size_t>(b)] < 0)
      representative[static_cast<std::size_t>(b)] = s;
  }
  for (int b = 0; b < result.num_blocks; ++b) {
    int rep = representative[static_cast<std::size_t>(b)];
    require(rep >= 0, "minimize: empty block");
    for (std::uint32_t ic = 0; ic < nic; ++ic) {
      reduced.set(b, ic, block[static_cast<std::size_t>(table.next(rep, ic))],
                  table.output(rep, ic));
    }
  }
  result.reduced = std::move(reduced);
  return result;
}

bool states_equivalent(const StateTable& table, int a, int b) {
  require(a >= 0 && a < table.num_states() && b >= 0 && b < table.num_states(),
          "states_equivalent: bad state");
  MinimizationResult r = minimize(table);
  return r.block_of_state[static_cast<std::size_t>(a)] ==
         r.block_of_state[static_cast<std::size_t>(b)];
}

}  // namespace fstg
