#include "fsm/encoding.h"

#include <algorithm>
#include <numeric>

#include "base/error.h"
#include "base/rng.h"

namespace fstg {

bool Encoding::valid() const {
  if (state_bits < 1 || state_bits > 20) return false;
  if (state_of_code.size() != num_codes()) return false;
  std::size_t used = 0;
  for (std::uint32_t c = 0; c < num_codes(); ++c) {
    const int s = state_of_code[c];
    if (s < 0) continue;
    ++used;
    if (static_cast<std::size_t>(s) >= code_of_state.size()) return false;
    if (code_of_state[static_cast<std::size_t>(s)] != c) return false;
  }
  return used == code_of_state.size();
}

Encoding natural_encoding(int num_states) {
  return make_encoding(num_states, EncodingStyle::kNatural);
}

Encoding make_encoding(int num_states, EncodingStyle style,
                       const std::string& seed_name) {
  require(num_states >= 1, "make_encoding: need at least one state");
  Encoding enc;
  enc.state_bits = 1;
  while ((1 << enc.state_bits) < num_states) ++enc.state_bits;
  require(enc.state_bits <= 20, "make_encoding: too many states");

  std::vector<std::uint32_t> codes(static_cast<std::size_t>(num_states));
  switch (style) {
    case EncodingStyle::kNatural:
      std::iota(codes.begin(), codes.end(), 0u);
      break;
    case EncodingStyle::kGray:
      for (int i = 0; i < num_states; ++i) {
        const std::uint32_t u = static_cast<std::uint32_t>(i);
        codes[static_cast<std::size_t>(i)] = u ^ (u >> 1);
      }
      break;
    case EncodingStyle::kRandom: {
      // Shuffle all codes, then keep the first num_states. Deterministic
      // from the seed name so experiments are reproducible.
      std::vector<std::uint32_t> all(std::size_t{1} << enc.state_bits);
      std::iota(all.begin(), all.end(), 0u);
      Rng rng = Rng::from_name("encoding:" + seed_name);
      for (std::size_t i = all.size() - 1; i > 0; --i)
        std::swap(all[i], all[rng.below(i + 1)]);
      std::copy_n(all.begin(), codes.size(), codes.begin());
      break;
    }
  }

  enc.code_of_state = codes;
  enc.state_of_code.assign(std::size_t{1} << enc.state_bits, -1);
  for (int i = 0; i < num_states; ++i)
    enc.state_of_code[codes[static_cast<std::size_t>(i)]] = i;
  require(enc.valid(), "make_encoding: internal error");
  return enc;
}

Encoding encode_states(const Kiss2Fsm& fsm, EncodingStyle style) {
  return make_encoding(fsm.num_states(), style, fsm.name);
}

}  // namespace fstg
