#pragma once

#include <cstdint>
#include <vector>

#include "kiss/kiss2.h"

namespace fstg {

/// Binary state assignment. The paper completes every machine to 2^sv
/// states, so the encoding maps each symbolic state to a code in
/// [0, 2^state_bits) and records which codes are used.
struct Encoding {
  int state_bits = 0;
  /// code_of_state[i] = binary code of symbolic state i.
  std::vector<std::uint32_t> code_of_state;
  /// state_of_code[c] = symbolic state index, or -1 for an unused code.
  std::vector<int> state_of_code;

  std::uint32_t num_codes() const { return 1u << state_bits; }
  bool code_used(std::uint32_t code) const { return state_of_code[code] >= 0; }

  /// Internal-consistency check (bijection between states and their codes).
  bool valid() const;
};

/// Encoding styles. The functional tests are implementation-independent
/// (the paper's point); the encoding changes the synthesized netlist and
/// hence the gate-level fault lists, which the ablation benches exercise.
enum class EncodingStyle {
  kNatural,  ///< state i -> code i (the default everywhere)
  kGray,     ///< state i -> i ^ (i >> 1), adjacent states differ in one bit
  kRandom,   ///< deterministic shuffle seeded by the machine name
};

/// Natural binary encoding in order of state appearance (state i -> code i).
Encoding natural_encoding(int num_states);

/// Encoding of `num_states` states in the given style. `seed_name` only
/// matters for kRandom.
Encoding make_encoding(int num_states, EncodingStyle style,
                       const std::string& seed_name = "");

/// Encoding for a KISS2 machine.
Encoding encode_states(const Kiss2Fsm& fsm,
                       EncodingStyle style = EncodingStyle::kNatural);

}  // namespace fstg
