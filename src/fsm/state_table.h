#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kiss/kiss2.h"

namespace fstg::store {
class BlobWriter;
class BlobReader;
}  // namespace fstg::store

namespace fstg {

/// A completely specified, binary-encoded state table: the functional model
/// the paper's procedure operates on. States are dense indices
/// 0..num_states-1; an input combination is an integer whose bit b is input
/// line b; the output is packed into a 32-bit word (bit b = output line b).
class StateTable {
 public:
  StateTable() = default;
  StateTable(int input_bits, int output_bits, int num_states);

  int input_bits() const { return input_bits_; }
  int output_bits() const { return output_bits_; }
  int num_states() const { return num_states_; }
  std::uint32_t num_input_combos() const { return 1u << input_bits_; }
  std::size_t num_transitions() const {
    return static_cast<std::size_t>(num_states_) * num_input_combos();
  }

  /// Number of state variables needed to encode num_states states.
  int state_bits() const;

  int next(int state, std::uint32_t ic) const { return next_[idx(state, ic)]; }
  std::uint32_t output(int state, std::uint32_t ic) const {
    return out_[idx(state, ic)];
  }
  void set(int state, std::uint32_t ic, int next_state, std::uint32_t out);

  /// Apply an input sequence starting at `state`; returns the final state.
  int run(int state, const std::vector<std::uint32_t>& seq) const;

  /// Output sequence produced by `seq` from `state`.
  std::vector<std::uint32_t> trace(int state,
                                   const std::vector<std::uint32_t>& seq) const;

  /// Optional display names (size num_states if present).
  std::vector<std::string> state_names;
  std::string name;

  bool operator==(const StateTable& o) const {
    return input_bits_ == o.input_bits_ && output_bits_ == o.output_bits_ &&
           num_states_ == o.num_states_ && next_ == o.next_ && out_ == o.out_;
  }

 private:
  std::size_t idx(int state, std::uint32_t ic) const {
    return static_cast<std::size_t>(state) * num_input_combos() + ic;
  }

  int input_bits_ = 0;
  int output_bits_ = 0;
  int num_states_ = 0;
  std::vector<std::int32_t> next_;
  std::vector<std::uint32_t> out_;
};

/// How to fill transitions a partial KISS2 description leaves unspecified
/// when expanding *without* going through logic synthesis. (The benchmark
/// pipeline instead reads the completed table back from the synthesized
/// netlist; see netlist/verify.h.)
enum class FillPolicy {
  kError,     ///< throw if any (state, input) is unspecified
  kSelfLoop,  ///< unspecified -> stay in state, output all zero
};

/// Expand a symbolic KISS2 machine into a dense encoded table over its
/// *specified* states only (no completion to 2^sv). Unspecified output bits
/// ('-') are filled with 0. Throws on nondeterminism.
StateTable expand_fsm(const Kiss2Fsm& fsm, FillPolicy policy);

/// Artifact-store codec (base/store/serial.h). The deserializer validates
/// every dimension and transition target and returns false — never throws —
/// on any violation, so the cache layer can treat a bad payload exactly
/// like a corrupt blob: a miss.
void serialize_state_table(const StateTable& table, store::BlobWriter& w);
bool deserialize_state_table(store::BlobReader& r, StateTable* out);

}  // namespace fstg
