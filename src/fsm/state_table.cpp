#include "fsm/state_table.h"

#include "base/error.h"
#include "base/store/serial.h"

namespace fstg {

StateTable::StateTable(int input_bits, int output_bits, int num_states)
    : input_bits_(input_bits),
      output_bits_(output_bits),
      num_states_(num_states) {
  require(input_bits >= 1 && input_bits <= 20, "input_bits out of range");
  require(output_bits >= 1 && output_bits <= 32, "output_bits out of range");
  require(num_states >= 1, "num_states must be positive");
  next_.assign(num_transitions(), -1);
  out_.assign(num_transitions(), 0);
}

int StateTable::state_bits() const {
  int bits = 1;
  while ((1 << bits) < num_states_) ++bits;
  return bits;
}

void StateTable::set(int state, std::uint32_t ic, int next_state,
                     std::uint32_t out) {
  require(state >= 0 && state < num_states_, "set: state out of range");
  require(ic < num_input_combos(), "set: input combination out of range");
  require(next_state >= 0 && next_state < num_states_,
          "set: next state out of range");
  next_[idx(state, ic)] = next_state;
  out_[idx(state, ic)] = out;
}

int StateTable::run(int state, const std::vector<std::uint32_t>& seq) const {
  for (std::uint32_t ic : seq) state = next(state, ic);
  return state;
}

std::vector<std::uint32_t> StateTable::trace(
    int state, const std::vector<std::uint32_t>& seq) const {
  std::vector<std::uint32_t> out;
  out.reserve(seq.size());
  for (std::uint32_t ic : seq) {
    out.push_back(output(state, ic));
    state = next(state, ic);
  }
  return out;
}

StateTable expand_fsm(const Kiss2Fsm& fsm, FillPolicy policy) {
  fsm.check_deterministic();
  StateTable table(fsm.num_inputs, fsm.num_outputs, fsm.num_states());
  table.name = fsm.name;
  table.state_names = fsm.state_names;

  const std::uint32_t nic = table.num_input_combos();
  std::vector<bool> specified(table.num_transitions(), false);

  for (const auto& row : fsm.rows) {
    const int ps = fsm.state_index(row.present);
    const int ns = fsm.state_index(row.next);
    // KISS2 text fields are MSB-first: the leftmost character is the
    // highest-numbered bit, matching the paper's input-column order.
    std::uint32_t out = 0;
    for (int b = 0; b < fsm.num_outputs; ++b)
      if (row.output[static_cast<std::size_t>(fsm.num_outputs - 1 - b)] == '1')
        out |= 1u << b;

    // Enumerate the minterms of the input cube.
    std::uint32_t value = 0;
    std::vector<int> free_bits;
    for (int b = 0; b < fsm.num_inputs; ++b) {
      char c = row.input[static_cast<std::size_t>(fsm.num_inputs - 1 - b)];
      if (c == '-')
        free_bits.push_back(b);
      else if (c == '1')
        value |= 1u << b;
    }
    const std::uint32_t n_free = 1u << free_bits.size();
    for (std::uint32_t m = 0; m < n_free; ++m) {
      std::uint32_t ic = value;
      for (std::size_t k = 0; k < free_bits.size(); ++k)
        if ((m >> k) & 1u) ic |= 1u << free_bits[k];
      table.set(ps, ic, ns, out);
      specified[static_cast<std::size_t>(ps) * nic + ic] = true;
    }
  }

  for (int s = 0; s < table.num_states(); ++s) {
    for (std::uint32_t ic = 0; ic < nic; ++ic) {
      if (specified[static_cast<std::size_t>(s) * nic + ic]) continue;
      switch (policy) {
        case FillPolicy::kError:
          throw Error("state " + fsm.state_names[static_cast<std::size_t>(s)] +
                      " unspecified for input combination " +
                      std::to_string(ic));
        case FillPolicy::kSelfLoop:
          table.set(s, ic, s, 0);
          break;
      }
    }
  }
  return table;
}

void serialize_state_table(const StateTable& table, store::BlobWriter& w) {
  w.i32(table.input_bits());
  w.i32(table.output_bits());
  w.i32(table.num_states());
  for (int s = 0; s < table.num_states(); ++s) {
    for (std::uint32_t ic = 0; ic < table.num_input_combos(); ++ic) {
      w.i32(table.next(s, ic));
      w.u32(table.output(s, ic));
    }
  }
  w.str(table.name);
  w.u64(table.state_names.size());
  for (const std::string& n : table.state_names) w.str(n);
}

bool deserialize_state_table(store::BlobReader& r, StateTable* out) {
  const std::int32_t ib = r.i32();
  const std::int32_t ob = r.i32();
  const std::int32_t ns = r.i32();
  if (!r.ok() || ib < 1 || ib > 20 || ob < 1 || ob > 32 || ns < 1) return false;
  const std::uint64_t transitions = std::uint64_t{1} << ib;
  // 8 bytes per transition must still fit in the payload: a corrupt count
  // cannot drive a huge allocation past the bounded reader.
  if (static_cast<std::uint64_t>(ns) * transitions * 8 > r.remaining())
    return false;
  StateTable table(ib, ob, ns);
  for (std::int32_t s = 0; s < ns; ++s) {
    for (std::uint32_t ic = 0; ic < table.num_input_combos(); ++ic) {
      const std::int32_t next = r.i32();
      const std::uint32_t o = r.u32();
      if (!r.ok() || next < 0 || next >= ns) return false;
      if (ob < 32 && (o >> ob) != 0) return false;
      table.set(s, ic, next, o);
    }
  }
  table.name = r.str();
  const std::uint64_t num_names = r.u64();
  if (!r.ok() || (num_names != 0 && num_names != static_cast<std::uint64_t>(ns)))
    return false;
  table.state_names.reserve(num_names);
  for (std::uint64_t i = 0; i < num_names; ++i)
    table.state_names.push_back(r.str());
  if (!r.ok()) return false;
  *out = std::move(table);
  return true;
}

}  // namespace fstg
