#pragma once

#include <vector>

#include "fsm/state_table.h"

namespace fstg {

/// Result of state minimization: the block (equivalence class) of each
/// original state, and the reduced machine (one state per block, block of
/// state 0 first in order of block discovery).
struct MinimizationResult {
  std::vector<int> block_of_state;
  StateTable reduced;
  int num_blocks = 0;
};

/// Moore/Hopcroft-style partition refinement for completely specified
/// machines. Two states are equivalent iff no input sequence distinguishes
/// their output behaviour. Used to (a) validate UIO existence claims —
/// a state merged with another can never have a UIO — and (b) sanity-check
/// synthetic benchmarks.
MinimizationResult minimize(const StateTable& table);

/// True if states a and b are output-equivalent.
bool states_equivalent(const StateTable& table, int a, int b);

}  // namespace fstg
