#pragma once

#include <vector>

#include "kiss/kiss2.h"

namespace fstg {

/// State reduction for *incompletely specified* machines (ISFSMs) — the
/// form the MCNC benchmarks actually take before completion. Unlike
/// completely specified minimization (fsm/minimize.h), ISFSM reduction is
/// about *compatibility*: two states are compatible if no input sequence
/// through specified entries distinguishes them, and compatible states may
/// be merged (the exact minimum cover is NP-hard; this is the standard
/// pairwise-compatibility + greedy clique covering heuristic).
struct IsfsmReduction {
  /// block_of_state[i] = merged class of original state i.
  std::vector<int> block_of_state;
  int num_blocks = 0;
  /// The reduced machine (rows re-emitted over class representatives;
  /// entries left unspecified stay unspecified).
  Kiss2Fsm reduced;
};

/// Pairwise compatibility matrix: compatible[a][b] (a < b) iff states a, b
/// never conflict on any co-specified input (outputs compatible and next
/// states recursively compatible).
std::vector<std::vector<bool>> compatibility_matrix(const Kiss2Fsm& fsm);

/// Greedy reduction: grow maximal cliques of mutually compatible states in
/// state order, merge each clique. Sound (never merges incompatibles) but
/// not minimum. Requires closure: merging is only applied when the implied
/// next-state merges stay within the chosen cliques; otherwise states stay
/// separate.
IsfsmReduction reduce_isfsm(const Kiss2Fsm& fsm);

}  // namespace fstg
