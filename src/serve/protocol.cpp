#include "serve/protocol.h"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "base/error.h"
#include "base/obs/json_check.h"

namespace fstg::serve {

namespace {

/// Extract a string field (empty when absent); kinds were already checked
/// by the schema validator.
std::string sval(const std::vector<obs::JsonField>& fields, const char* key) {
  const obs::JsonField* f = obs::json_find_field(fields, key);
  return f != nullptr && f->kind == 's' ? f->sval : std::string();
}

/// Extract a number field with an inclusive range check. Returns false
/// (with *error) when present but out of range or non-integral.
bool nval(const std::vector<obs::JsonField>& fields, const char* key,
          double lo, double hi, double* out, std::string* error) {
  const obs::JsonField* f = obs::json_find_field(fields, key);
  if (f == nullptr || f->kind != 'n') return true;  // absent: keep default
  if (f->nval < lo || f->nval > hi ||
      f->nval != static_cast<double>(static_cast<long long>(f->nval))) {
    *error = std::string(key) + " must be an integer in [" +
             std::to_string(static_cast<long long>(lo)) + ", " +
             std::to_string(static_cast<long long>(hi)) + "]";
    return false;
  }
  *out = f->nval;
  return true;
}

}  // namespace

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string encode_frame(const std::string& payload) {
  require(payload.size() <= 0xFFFFFFFFull,
          "serve frame payload too large to encode");
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(kFramePrefixBytes + payload.size());
  out.push_back(static_cast<char>(n & 0xFF));
  out.push_back(static_cast<char>((n >> 8) & 0xFF));
  out.push_back(static_cast<char>((n >> 16) & 0xFF));
  out.push_back(static_cast<char>((n >> 24) & 0xFF));
  out += payload;
  return out;
}

FrameDecoder::FrameDecoder(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (dead_) return;  // no point buffering past a protocol error
  buf_.append(data, n);
}

FrameDecoder::Outcome FrameDecoder::next(std::string* payload,
                                         std::string* error) {
  if (dead_) {
    if (error) *error = dead_error_;
    return Outcome::kError;
  }
  if (buf_.size() < kFramePrefixBytes) return Outcome::kNeedMore;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(buf_.data());
  const std::uint32_t n = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16) |
                          (static_cast<std::uint32_t>(p[3]) << 24);
  if (n > max_frame_bytes_) {
    dead_ = true;
    dead_error_ = "frame length " + std::to_string(n) +
                  " exceeds the limit of " +
                  std::to_string(max_frame_bytes_) + " bytes";
    buf_.clear();
    if (error) *error = dead_error_;
    return Outcome::kError;
  }
  if (buf_.size() < kFramePrefixBytes + n) return Outcome::kNeedMore;
  if (payload) payload->assign(buf_, kFramePrefixBytes, n);
  buf_.erase(0, kFramePrefixBytes + n);
  return Outcome::kFrame;
}

bool parse_serve_request(const std::string& text, ServeRequest* request,
                         std::string* error) {
  std::string err;
  if (!obs::validate_serve_request_json(text, &err)) {
    if (error) *error = "bad request: " + err;
    return false;
  }
  std::vector<obs::JsonField> top;
  if (!obs::json_parse_object(text, &top, nullptr, &err)) {
    if (error) *error = "bad request: " + err;  // unreachable after validate
    return false;
  }
  ServeRequest req;
  req.id = sval(top, "id");
  req.type = sval(top, "type");
  req.circuit = sval(top, "circuit");
  req.kiss2 = sval(top, "kiss2");
  req.tests = sval(top, "tests");
  double uio = 0.0, xfer = 1.0, time_ms = 0.0, max_exp = 0.0;
  if (!nval(top, "uio", 0, 64, &uio, &err) ||
      !nval(top, "xfer", 0, 64, &xfer, &err) ||
      !nval(top, "time_budget_ms", 0, 86'400'000, &time_ms, &err) ||
      !nval(top, "max_expansions", 0, 2'000'000'000, &max_exp, &err)) {
    if (error) *error = "bad request: " + err;
    return false;
  }
  req.uio = static_cast<int>(uio);
  req.xfer = static_cast<int>(xfer);
  const obs::JsonField* prune = obs::json_find_field(top, "static_prune");
  req.static_prune = prune != nullptr && prune->kind == 'b' &&
                     prune->nval != 0.0;
  req.budget.time_budget_ms = time_ms;
  req.budget.max_expansions = static_cast<std::uint64_t>(max_exp);
  *request = std::move(req);
  return true;
}

std::string serve_request_to_json(const ServeRequest& request) {
  std::ostringstream os;
  os << "{\"schema\": \"fstg.serve_request.v1\", \"type\": "
     << json_quote(request.type);
  if (!request.id.empty()) os << ", \"id\": " << json_quote(request.id);
  if (!request.circuit.empty())
    os << ", \"circuit\": " << json_quote(request.circuit);
  if (!request.kiss2.empty())
    os << ", \"kiss2\": " << json_quote(request.kiss2);
  if (!request.tests.empty())
    os << ", \"tests\": " << json_quote(request.tests);
  if (request.uio != 0) os << ", \"uio\": " << request.uio;
  if (request.xfer != 1) os << ", \"xfer\": " << request.xfer;
  if (request.static_prune) os << ", \"static_prune\": true";
  if (request.budget.time_budget_ms > 0.0)
    os << ", \"time_budget_ms\": "
       << static_cast<long long>(request.budget.time_budget_ms);
  if (request.budget.max_expansions > 0)
    os << ", \"max_expansions\": " << request.budget.max_expansions;
  os << "}";
  return os.str();
}

std::string serve_response_to_json(const ServeResponse& response) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "{\"schema\": \"fstg.serve_response.v1\", \"id\": "
     << json_quote(response.id) << ", \"type\": " << json_quote(response.type)
     << ", \"status\": " << json_quote(response.status)
     << ", \"error\": " << json_quote(response.error)
     << ", \"wall_ms\": " << response.wall_ms << ", \"result\": "
     << (response.result_json.empty() ? std::string("{}")
                                      : response.result_json)
     << "}";
  std::string text = os.str();
  std::string error;
  require(obs::validate_serve_response_json(text, &error),
          "serve response failed self-validation: " + error);
  return text;
}

bool parse_serve_response(const std::string& text, ServeResponse* response,
                          std::string* error) {
  std::string err;
  if (!obs::validate_serve_response_json(text, &err)) {
    if (error) *error = "bad response: " + err;
    return false;
  }
  std::vector<obs::JsonField> top;
  if (!obs::json_parse_object(text, &top, nullptr, &err)) {
    if (error) *error = "bad response: " + err;
    return false;
  }
  ServeResponse resp;
  resp.id = sval(top, "id");
  resp.type = sval(top, "type");
  resp.status = sval(top, "status");
  resp.error = sval(top, "error");
  resp.wall_ms = obs::json_find_field(top, "wall_ms")->nval;
  resp.result_json.clear();  // not round-tripped; callers re-parse `text`
  *response = std::move(resp);
  return true;
}

}  // namespace fstg::serve
