#pragma once

#include <memory>
#include <string>

#include "base/robust/budget.h"
#include "serve/protocol.h"

namespace fstg::serve {

/// --- `fstg serve`: the persistent ATPG daemon ----------------------------
///
/// One-shot CLI runs re-parse, re-synthesize, and re-derive UIO tables on
/// every invocation. The server keeps compiled circuits hot in an
/// in-memory content-addressed cache (keyed like src/harness/cache: the
/// canonical KISS2 text plus every option that changes the artifact) and
/// multiplexes concurrent gen/sim/lint requests onto the process-wide
/// work-stealing pool, each under its own robust::Budget envelope whose
/// sticky trip doubles as cooperative cancellation.
///
/// Admission control is a bounded queue in front of a fixed worker pool:
/// a request arriving with the queue full is shed with a typed
/// "overloaded" response (counter serve.shed) instead of growing latency
/// without bound. Every executed or shed pipeline request appends one
/// fstg.run.v1 record to the ledger (when one is configured), and a
/// `metrics` request scrapes the live obs registry.
///
/// Protocol, schemas, and exit semantics: docs/SERVING.md.

struct ServeOptions {
  /// Unix-domain socket path. Takes precedence over tcp_port when set.
  std::string socket_path;
  /// TCP listen port on 127.0.0.1 (0 = ephemeral, read back via port()).
  /// Negative = no TCP listener.
  int tcp_port = -1;
  /// Worker threads executing pipeline requests (min 1). Each worker may
  /// itself fan out onto the parallel_for pool.
  int workers = 4;
  /// Admission bound: requests queued beyond this are shed.
  int queue_capacity = 16;
  /// Per-frame payload cap (protocol error beyond it).
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Hot-cache capacity in compiled circuits (LRU eviction past it).
  std::size_t max_circuits = 8;
  /// Default budget for requests that carry no budget fields.
  robust::Budget default_budget;
  /// Serve exactly one connection, then stop (scriptable from ctest).
  bool once = false;
  /// Append one fstg.run.v1 record per pipeline request ("" = no ledger).
  std::string ledger_path;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();  ///< stops if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the accept loop and worker pool. False (with
  /// *error) if the socket cannot be bound.
  bool start(std::string* error);

  /// Block until a stop is signalled: stop() from another thread, a
  /// `shutdown` request, the --once connection closing, or
  /// signal_stop_async (the CLI's SIGINT/SIGTERM path).
  void wait();

  /// Graceful teardown: stop accepting, join connection readers, let
  /// workers finish their in-flight request, shed everything still queued
  /// with a typed response, then close the sockets. Idempotent.
  void stop();

  /// Async-signal-safe stop trigger: just flags and wakes (one write(2) on
  /// a pipe). The caller's wait()/stop() pair does the actual teardown.
  void signal_stop_async();

  bool running() const;
  /// Resolved TCP port after start() (ephemeral binds), -1 for unix-only.
  int port() const;
  const ServeOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Blocking client for tests and `fstg serve --client`: connect (with
/// retry until the deadline, so a just-forked server races safely), send
/// framed payloads, receive framed responses.
class Client {
 public:
  Client();
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Retry-connect to a unix socket / 127.0.0.1:port until timeout_ms.
  bool connect_unix(const std::string& path, int timeout_ms,
                    std::string* error);
  bool connect_tcp(int port, int timeout_ms, std::string* error);

  bool send(const std::string& payload, std::string* error);
  /// One complete frame (blocks up to timeout_ms). False on timeout,
  /// protocol error, or the peer closing.
  bool recv(std::string* payload, int timeout_ms, std::string* error);

  bool connected() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace fstg::serve
