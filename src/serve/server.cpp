#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/static_faults.h"
#include "atpg/cycles.h"
#include "atpg/test_io.h"
#include "base/error.h"
#include "base/obs/metrics.h"
#include "base/obs/telemetry.h"
#include "base/store/hash.h"
#include "base/store/ledger.h"
#include "fault/fault.h"
#include "fault/fault_sim.h"
#include "harness/experiment.h"
#include "kiss/kiss2_parser.h"
#include "kiss/kiss2_writer.h"
#include "lint/diagnostic.h"
#include "lint/lint.h"

namespace fstg::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Adapters for the two strerror_r flavors: GNU returns the message (which
/// may or may not be `buf`), XSI returns 0 with the message in `buf`.
/// Overload resolution picks whichever one this libc provides (the other
/// is dead code, hence maybe_unused).
[[maybe_unused]] const char* strerror_adapt(const char* r, const char*) {
  return r;
}
[[maybe_unused]] const char* strerror_adapt(int r, const char* buf) {
  return r == 0 ? buf : nullptr;
}

/// Thread-safe description of the current errno. std::strerror writes to a
/// static buffer (clang-tidy concurrency-mt-unsafe); worker and reader
/// threads report socket errors concurrently, so use strerror_r into a
/// local buffer instead.
std::string errno_string() {
  const int err = errno;
  char buf[256];
  buf[0] = '\0';
  const char* msg = strerror_adapt(strerror_r(err, buf, sizeof buf), buf);
  return msg != nullptr && *msg != '\0' ? std::string(msg)
                                        : "errno " + std::to_string(err);
}

/// Write all of `data` with per-call timeouts (SO_SNDTIMEO is set on every
/// connection fd): a stalled peer must never wedge a worker forever.
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void set_send_timeout(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/// --- Hot circuit cache ---------------------------------------------------
///
/// Single-flight, LRU-bounded map from content key to the compiled
/// CircuitExperiment. Concurrent requests for the same circuit share one
/// compilation: the first arrival owns the flight and computes, later
/// arrivals block on the shared future (and count as hits — they paid no
/// compute). Keys follow src/harness/cache: canonical KISS2 text plus every
/// option that changes the artifact plus a schema tag. Degraded (budget-cut)
/// compiles and failed flights are removed after completion so a tight
/// budget can never poison the cache for a later unlimited request —
/// in-flight waiters inherit the owner's outcome, the *next* request
/// recomputes.
class HotCache {
 public:
  explicit HotCache(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  struct Lookup {
    std::shared_ptr<const CircuitExperiment> exp;
    bool hit = false;
  };

  Lookup get_or_compute(
      std::uint64_t key,
      const std::function<std::shared_ptr<const CircuitExperiment>()>&
          compute) {
    std::promise<std::shared_ptr<const CircuitExperiment>> promise;
    std::shared_future<std::shared_ptr<const CircuitExperiment>> flight;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        it->second.tick = ++tick_;
        flight = it->second.flight;
      } else {
        owner = true;
        flight = promise.get_future().share();
        map_[key] = Entry{flight, ++tick_};
        evict_locked(key);
      }
    }
    if (!owner) {
      c_hit_.inc();
      return Lookup{flight.get(), true};  // rethrows the owner's failure
    }
    c_miss_.inc();
    try {
      std::shared_ptr<const CircuitExperiment> exp = compute();
      promise.set_value(exp);
      if (exp->gen.degraded) erase(key);
      return Lookup{std::move(exp), false};
    } catch (...) {
      promise.set_exception(std::current_exception());
      erase(key);
      throw;
    }
  }

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const CircuitExperiment>> flight;
    std::uint64_t tick = 0;
  };

  void erase(std::uint64_t key) {
    std::lock_guard<std::mutex> lock(mu_);
    map_.erase(key);
  }

  /// Drop least-recently-used *completed* entries past capacity. In-flight
  /// entries (and the one just inserted) are never evicted: waiters hold
  /// the shared future anyway, so evicting them would only lose the
  /// single-flight dedup.
  void evict_locked(std::uint64_t inserted_key) {
    while (map_.size() > capacity_) {
      auto victim = map_.end();
      for (auto it = map_.begin(); it != map_.end(); ++it) {
        if (it->first == inserted_key) continue;
        if (it->second.flight.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready)
          continue;
        if (victim == map_.end() || it->second.tick < victim->second.tick)
          victim = it;
      }
      if (victim == map_.end()) return;  // everything else still in flight
      map_.erase(victim);
      c_evict_.inc();
    }
  }

  // Registered at construction, not first use: a live `metrics` scrape must
  // list the cache counters even before the first compile completes.
  const obs::Counter c_hit_ = obs::counter("cache.hot.hit");
  const obs::Counter c_miss_ = obs::counter("cache.hot.miss");
  const obs::Counter c_evict_ = obs::counter("cache.hot.evict");

  std::mutex mu_;
  std::map<std::uint64_t, Entry> map_;
  std::uint64_t tick_ = 0;
  std::size_t capacity_;
};

}  // namespace

/// One accepted connection. The reader thread and the workers share it: the
/// reader feeds the frame decoder, workers write responses under write_mu
/// (responses to pipelined requests may complete out of order; the frame
/// protocol keeps them intact, the `id` field keeps them correlated).
struct Connection {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<bool> closed{false};
  std::thread reader;
};

struct Server::Impl {
  ServeOptions opts;

  int listen_fd = -1;
  int resolved_port = -1;
  int wake_pipe[2] = {-1, -1};  ///< a written byte is never read: once
                                ///< signalled, every poller wakes forever

  std::thread accept_thread;
  std::atomic<bool> stop_flag{false};    ///< teardown in progress (stop())
  std::atomic<bool> stop_signal{false};  ///< stop requested (wait() returns)
  std::atomic<bool> started{false};
  std::atomic<bool> once_accepted{false};

  std::mutex conn_mu;
  std::vector<std::shared_ptr<Connection>> conns;

  struct Job {
    std::shared_ptr<Connection> conn;
    ServeRequest req;
    Clock::time_point arrived;
  };
  std::mutex qmu;
  std::condition_variable qcv;
  std::deque<Job> queue;
  std::vector<std::thread> workers;

  HotCache cache;

  explicit Impl(ServeOptions o)
      : opts(std::move(o)), cache(opts.max_circuits) {}

  // --- lifecycle ---------------------------------------------------------

  void signal_stop() {
    stop_signal.store(true);
    if (wake_pipe[1] >= 0) {
      const char b = 's';
      [[maybe_unused]] ssize_t n = ::write(wake_pipe[1], &b, 1);
    }
  }

  // --- request plumbing ---------------------------------------------------

  void respond(const std::shared_ptr<Connection>& conn,
               const ServeResponse& resp) {
    static const obs::Counter c_werr = obs::counter("serve.write_errors");
    if (conn->closed.load()) return;
    const std::string frame = encode_frame(serve_response_to_json(resp));
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->closed.load()) return;
    if (!send_all(conn->fd, frame)) {
      conn->closed.store(true);
      c_werr.inc();
    }
  }

  void ledger_append(const ServeRequest& req, const ServeResponse& resp) {
    if (opts.ledger_path.empty()) return;
    store::RunRecord rec;
    rec.tool = "fstg";
    rec.command = "serve." + req.type;
    rec.circuit = req.circuit;
    store::KeyBuilder k;
    k.add(req.type).add(req.circuit).add(req.kiss2).add(req.tests);
    k.add_i64(req.uio).add_i64(req.xfer);
    k.add_i64(static_cast<std::int64_t>(req.budget.time_budget_ms));
    k.add_u64(req.budget.max_expansions);
    rec.config_hash = store::hash_hex(k.digest());
    if (resp.status == "ok") rec.exit_code = 0;
    else if (resp.status == "budget") rec.exit_code = 3;
    else if (resp.status == "overloaded") rec.exit_code = 4;
    else rec.exit_code = 2;  // parse | error
    rec.wall_ms = resp.wall_ms;
    rec.budget_trips = resp.status == "budget" ? 1 : 0;
    store::Ledger ledger(opts.ledger_path);
    std::string error;
    static const obs::Counter c_lerr = obs::counter("serve.ledger_errors");
    if (!ledger.append(std::move(rec), &error)) c_lerr.inc();
  }

  robust::Budget effective_budget(const ServeRequest& req) const {
    return req.budget.unlimited() ? opts.default_budget : req.budget;
  }

  /// Resolve the request's machine: a built-in benchmark by name, or
  /// inline KISS2 text. Throws (ParseError / Error) on anything invalid.
  Kiss2Fsm load_request_fsm(const ServeRequest& req) const {
    if (!req.circuit.empty()) return load_benchmark(req.circuit);
    return parse_kiss2(req.kiss2, "inline");
  }

  HotCache::Lookup compile(const ServeRequest& req,
                           const robust::Budget& budget) {
    const Kiss2Fsm fsm = load_request_fsm(req);
    // Key: canonical machine text + the generator options that change the
    // artifact + a schema tag. The budget is deliberately excluded, like
    // harness::gen_key: degraded results are never cached, and complete
    // ones are budget-independent.
    store::KeyBuilder k;
    k.add("serve.hot.v1").add(write_kiss2(fsm));
    k.add_i64(req.uio).add_i64(req.xfer);
    return cache.get_or_compute(k.digest(), [&] {
      ExperimentOptions options;
      options.gen.uio_max_length = req.uio;
      options.gen.transfer_max_length = req.xfer;
      options.gen.budget = budget;
      return std::make_shared<const CircuitExperiment>(run_fsm(fsm, options));
    });
  }

  // --- handlers -----------------------------------------------------------

  void handle_gen(const ServeRequest& req, ServeResponse* resp) {
    const robust::Budget budget = effective_budget(req);
    const HotCache::Lookup got = compile(req, budget);
    const CircuitExperiment& exp = *got.exp;

    TestFile file;
    file.circuit = exp.fsm.name;
    file.input_bits = exp.table.input_bits();
    file.state_bits = exp.synth.circuit.num_sv;
    file.tests = exp.gen.tests;

    const int sv = exp.synth.circuit.num_sv;
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    os << "{\"circuit\": " << json_quote(exp.fsm.name)
       << ", \"tests\": " << exp.gen.tests.size()
       << ", \"total_length\": " << exp.gen.tests.total_length()
       << ", \"cycles\": " << test_application_cycles(sv, exp.gen.tests)
       << ", \"uio_states\": " << exp.gen.uios.count()
       << ", \"degraded\": " << (exp.gen.degraded ? "true" : "false")
       << ", \"cache_hit\": " << (got.hit ? "true" : "false")
       << ", \"test_file\": " << json_quote(write_test_file(file)) << "}";
    resp->result_json = os.str();
  }

  void handle_sim(const ServeRequest& req, ServeResponse* resp) {
    const robust::Budget budget = effective_budget(req);
    const HotCache::Lookup got = compile(req, budget);
    const CircuitExperiment& exp = *got.exp;

    TestFile file = parse_test_file(req.tests);
    require(file.input_bits == exp.table.input_bits(),
            "test file input width does not match the circuit");
    require(file.state_bits == exp.synth.circuit.num_sv,
            "test file state width does not match the circuit");
    file.tests.validate(exp.table);

    // Same contract as `fstg sim`: a partial fault simulation would
    // under-report coverage, so exhaustion is a hard budget failure
    // (status "budget"), never a silently degraded result.
    robust::RunGuard guard(budget, "fault_sim.batch");
    const std::vector<FaultSpec> sa_faults =
        enumerate_stuck_at(exp.synth.circuit.comb);
    FaultSimResult sa = simulate_faults_guarded(exp.synth.circuit, file.tests,
                                                sa_faults, guard);
    if (!sa.complete) throw BudgetError(guard.status().message());

    CircuitExperiment shim = exp;
    shim.gen.tests = file.tests;
    // Redundancy classification is exhaustive and serial; the daemon keeps
    // latency bounded and reports raw coverage (use `fstg sim` offline for
    // the detectable-coverage view). The static pre-flight is polynomial,
    // so request-level opt-in is allowed.
    GateLevelOptions gate_options;
    gate_options.classify_redundancy = false;
    gate_options.static_prune = req.static_prune;
    GateLevelResult gate = run_gate_level(shim, gate_options);

    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    os << "{\"circuit\": " << json_quote(exp.fsm.name)
       << ", \"tests\": " << file.tests.size()
       << ", \"cache_hit\": " << (got.hit ? "true" : "false");
    if (gate.static_pruned)
      os << ", \"sa_pruned\": " << gate.sa_pruned
         << ", \"br_pruned\": " << gate.br_pruned;
    os << ", \"sa_detected\": " << gate.sa.sim.detected_faults
       << ", \"sa_total\": " << gate.sa.sim.total_faults
       << ", \"sa_coverage\": " << gate.sa.sim.coverage_percent()
       << ", \"sa_effective\": " << gate.sa.effective_tests.size()
       << ", \"br_detected\": " << gate.br.sim.detected_faults
       << ", \"br_total\": " << gate.br.sim.total_faults
       << ", \"br_coverage\": " << gate.br.sim.coverage_percent()
       << ", \"br_effective\": " << gate.br.effective_tests.size() << "}";
    resp->result_json = os.str();
  }

  void handle_lint(const ServeRequest& req, ServeResponse* resp) {
    lint::LintOptions options;
    options.budget = effective_budget(req);
    options.uio_max_length = req.uio;
    const lint::LintReport report =
        lint::run_lint_kiss2(load_request_fsm(req), nullptr, options);
    resp->result_json = lint::report_to_json(report);
    if (report.truncated) {
      // Findings present are valid; absences prove nothing. Same category
      // as `fstg lint`'s exit 3.
      resp->status = "budget";
      resp->error = "lint budget exhausted; findings are partial";
    }
  }

  void execute(Job job) {
    static const obs::Counter c_req = obs::counter("serve.requests");
    static const obs::Counter c_internal = obs::counter("serve.internal_errors");
    ServeResponse resp;
    resp.id = job.req.id;
    resp.type = job.req.type;
    const Clock::time_point t0 = Clock::now();
    try {
      const char* stage = job.req.type == "gen"   ? "serve.gen"
                          : job.req.type == "sim" ? "serve.sim"
                                                  : "serve.lint";
      obs::StageScope scope(stage, job.req.circuit.empty()
                                       ? std::string("inline")
                                       : job.req.circuit);
      if (job.req.type == "gen") handle_gen(job.req, &resp);
      else if (job.req.type == "sim") handle_sim(job.req, &resp);
      else handle_lint(job.req, &resp);
    } catch (const BudgetError& e) {
      resp.status = "budget";
      resp.error = e.what();
      resp.result_json = "{}";
    } catch (const Error& e) {  // ParseError included: bad circuit/input
      resp.status = "error";
      resp.error = e.what();
      resp.result_json = "{}";
    } catch (const std::exception& e) {
      resp.status = "error";
      resp.error = std::string("internal: ") + e.what();
      resp.result_json = "{}";
      c_internal.inc();
    }
    resp.wall_ms = ms_since(t0);
    c_req.inc();
    ledger_append(job.req, resp);
    respond(job.conn, resp);
  }

  void worker_loop() {
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(qmu);
        qcv.wait(lock, [&] { return stop_flag.load() || !queue.empty(); });
        // Teardown beats the backlog: remaining queued jobs are shed with a
        // typed response by stop(), not silently dropped.
        if (stop_flag.load()) return;
        job = std::move(queue.front());
        queue.pop_front();
      }
      execute(std::move(job));
    }
  }

  void shed(const Job& job, const std::string& why) {
    static const obs::Counter c_shed = obs::counter("serve.shed");
    c_shed.inc();
    ServeResponse resp;
    resp.id = job.req.id;
    resp.type = job.req.type;
    resp.status = "overloaded";
    resp.error = why;
    resp.wall_ms = ms_since(job.arrived);
    ledger_append(job.req, resp);
    respond(job.conn, resp);
  }

  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const std::string& payload) {
    static const obs::Counter c_parse = obs::counter("serve.parse_errors");
    const Clock::time_point t0 = Clock::now();
    ServeRequest req;
    std::string perr;
    if (!parse_serve_request(payload, &req, &perr)) {
      c_parse.inc();
      ServeResponse resp;
      resp.status = "parse";
      resp.error = perr;
      resp.wall_ms = ms_since(t0);
      respond(conn, resp);  // framing is still aligned: connection survives
      return;
    }
    if (req.type == "ping") {
      ServeResponse resp;
      resp.id = req.id;
      resp.type = req.type;
      resp.wall_ms = ms_since(t0);
      respond(conn, resp);
      return;
    }
    if (req.type == "metrics") {
      // Scrape the live registry on the reader thread: cheap, and it must
      // work even when every worker is busy — that is when you want it.
      ServeResponse resp;
      resp.id = req.id;
      resp.type = req.type;
      resp.result_json = obs::metrics_to_json(obs::snapshot_metrics());
      resp.wall_ms = ms_since(t0);
      respond(conn, resp);
      return;
    }
    if (req.type == "shutdown") {
      ServeResponse resp;
      resp.id = req.id;
      resp.type = req.type;
      resp.wall_ms = ms_since(t0);
      respond(conn, resp);
      signal_stop();
      return;
    }
    // Pipeline request: admission control. Bounded queue, graceful
    // shedding — a full queue answers immediately with a typed
    // "overloaded" response instead of queuing unbounded latency.
    Job job{conn, std::move(req), t0};
    {
      std::lock_guard<std::mutex> lock(qmu);
      if (!stop_flag.load() &&
          queue.size() < static_cast<std::size_t>(opts.queue_capacity)) {
        queue.push_back(std::move(job));
        qcv.notify_one();
        return;
      }
    }
    shed(job, stop_flag.load() ? "server stopping" : "queue full");
  }

  void reader_loop(std::shared_ptr<Connection> conn) {
    FrameDecoder decoder(opts.max_frame_bytes);
    char buf[4096];
    // Distinguishes a dead connection (peer closed, hard error, protocol
    // violation) from a stop-initiated exit: on stop the connection must
    // stay writable so queued jobs can still be answered (executed or shed)
    // during drain — stop() closes the fds afterwards.
    bool conn_dead = false;
    while (!stop_signal.load() && !conn->closed.load() && !conn_dead) {
      pollfd fds[2] = {{conn->fd, POLLIN, 0}, {wake_pipe[0], POLLIN, 0}};
      const int pr = ::poll(fds, 2, 250);
      if (pr < 0) {
        if (errno == EINTR) continue;
        conn_dead = true;
        break;
      }
      if (fds[1].revents & POLLIN) break;  // stop signalled
      if (pr == 0) continue;
      if (fds[0].revents & (POLLERR | POLLHUP | POLLNVAL) &&
          !(fds[0].revents & POLLIN)) {
        conn_dead = true;
        break;
      }
      if (!(fds[0].revents & POLLIN)) continue;
      const ssize_t n = ::read(conn->fd, buf, sizeof buf);
      if (n <= 0) {  // peer closed (or hard error)
        conn_dead = true;
        break;
      }
      decoder.feed(buf, static_cast<std::size_t>(n));
      for (;;) {
        std::string payload, err;
        const FrameDecoder::Outcome out = decoder.next(&payload, &err);
        if (out == FrameDecoder::Outcome::kNeedMore) break;
        if (out == FrameDecoder::Outcome::kError) {
          // An untrusted length prefix cannot be resynchronized past:
          // answer with a typed parse response, then drop the connection.
          static const obs::Counter c_frame =
              obs::counter("serve.frame_errors");
          c_frame.inc();
          ServeResponse resp;
          resp.status = "parse";
          resp.error = err;
          respond(conn, resp);
          conn_dead = true;
          break;
        }
        handle_frame(conn, payload);
      }
    }
    if (conn_dead) {
      {
        std::lock_guard<std::mutex> lock(conn->write_mu);
        conn->closed.store(true);
      }
      // Let the peer observe EOF immediately instead of waiting out its
      // receive timeout. stop() still owns the final ::close.
      ::shutdown(conn->fd, SHUT_RDWR);
    }
    // --once: the single served connection going away is the stop signal.
    if (opts.once) signal_stop();
  }

  void accept_loop() {
    static const obs::Counter c_conn = obs::counter("serve.connections");
    while (!stop_signal.load()) {
      pollfd fds[2] = {{listen_fd, POLLIN, 0}, {wake_pipe[0], POLLIN, 0}};
      const int pr = ::poll(fds, 2, 250);
      if (pr < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (fds[1].revents & POLLIN) break;
      if (!(fds[0].revents & POLLIN)) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      set_send_timeout(fd, 10);
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      c_conn.inc();
      {
        std::lock_guard<std::mutex> lock(conn_mu);
        conns.push_back(conn);
      }
      conn->reader = std::thread([this, conn] { reader_loop(conn); });
      if (opts.once) {
        once_accepted.store(true);
        return;  // exactly one connection; stop accepting immediately
      }
    }
  }
};

Server::Server(ServeOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  Impl& im = *impl_;
  if (im.started.load()) {
    if (error) *error = "server already started";
    return false;
  }
  // Register the full serve counter catalog before the first connection so
  // every `metrics` scrape lists every counter, including those whose first
  // event has not fired yet (dashboards and tests rely on a stable set).
  for (const char* name :
       {"serve.requests", "serve.connections", "serve.shed",
        "serve.parse_errors", "serve.frame_errors", "serve.write_errors",
        "serve.ledger_errors", "serve.internal_errors"})
    obs::counter(name);
  // Same contract for the analysis.* and lint.* catalogs: sim requests with
  // static_prune and lint requests bump them lazily, but a scrape taken
  // before the first such request must already list them.
  analysis::register_analysis_counters();
  lint::register_lint_counters();
  if (::pipe(im.wake_pipe) != 0) {
    if (error) *error = std::string("pipe: ") + errno_string();
    return false;
  }
  if (!im.opts.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (im.opts.socket_path.size() >= sizeof addr.sun_path) {
      if (error) *error = "socket path too long: " + im.opts.socket_path;
      return false;
    }
    std::memcpy(addr.sun_path, im.opts.socket_path.c_str(),
                im.opts.socket_path.size() + 1);
    ::unlink(im.opts.socket_path.c_str());  // a stale socket is ours to replace
    im.listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (im.listen_fd < 0 ||
        ::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      if (error)
        *error = "cannot bind " + im.opts.socket_path + ": " +
                 errno_string();
      return false;
    }
  } else if (im.opts.tcp_port >= 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(im.opts.tcp_port));
    im.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    const int one = 1;
    if (im.listen_fd >= 0)
      ::setsockopt(im.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (im.listen_fd < 0 ||
        ::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      if (error)
        *error = "cannot bind 127.0.0.1:" + std::to_string(im.opts.tcp_port) +
                 ": " + errno_string();
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(im.listen_fd, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0)
      im.resolved_port = ntohs(bound.sin_port);
  } else {
    if (error) *error = "serve needs a socket path or a TCP port";
    return false;
  }
  if (::listen(im.listen_fd, 64) != 0) {
    if (error) *error = std::string("listen: ") + errno_string();
    return false;
  }
  const int workers = im.opts.workers < 1 ? 1 : im.opts.workers;
  im.workers.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    im.workers.emplace_back([this] { impl_->worker_loop(); });
  im.accept_thread = std::thread([this] { impl_->accept_loop(); });
  im.started.store(true);
  return true;
}

void Server::wait() {
  Impl& im = *impl_;
  if (!im.started.load()) return;
  // The wake byte is written once and never consumed, so POLLIN is a level
  // every waiter observes — this poll, the accept loop, and every reader.
  while (!im.stop_signal.load()) {
    pollfd p{im.wake_pipe[0], POLLIN, 0};
    const int r = ::poll(&p, 1, 250);
    if (r < 0 && errno != EINTR) break;
    if (r > 0 && (p.revents & POLLIN)) break;
  }
}

void Server::stop() {
  Impl& im = *impl_;
  if (!im.started.load()) return;
  if (im.stop_flag.exchange(true)) return;  // idempotent
  im.signal_stop();

  // 1. No new connections.
  if (im.accept_thread.joinable()) im.accept_thread.join();
  if (im.listen_fd >= 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
  }
  if (!im.opts.socket_path.empty()) ::unlink(im.opts.socket_path.c_str());

  // 2. No new requests: join every reader (they saw the wake byte).
  {
    std::lock_guard<std::mutex> lock(im.conn_mu);
    for (auto& conn : im.conns)
      if (conn->reader.joinable()) conn->reader.join();
  }

  // 3. Workers finish their in-flight request and exit.
  im.qcv.notify_all();
  for (std::thread& w : im.workers)
    if (w.joinable()) w.join();
  im.workers.clear();

  // 4. Shed the backlog with typed responses (connection fds still open),
  //    then close the sockets.
  std::deque<Impl::Job> leftover;
  {
    std::lock_guard<std::mutex> lock(im.qmu);
    leftover.swap(im.queue);
  }
  for (Impl::Job& job : leftover) im.shed(job, "server stopping");
  {
    std::lock_guard<std::mutex> lock(im.conn_mu);
    for (auto& conn : im.conns) {
      conn->closed.store(true);
      if (conn->fd >= 0) {
        ::close(conn->fd);
        conn->fd = -1;
      }
    }
    im.conns.clear();
  }
  for (int& fd : im.wake_pipe) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  im.started.store(false);
}

void Server::signal_stop_async() { impl_->signal_stop(); }

bool Server::running() const { return impl_->started.load(); }

int Server::port() const { return impl_->resolved_port; }

const ServeOptions& Server::options() const { return impl_->opts; }

// --- Client ----------------------------------------------------------------

Client::Client() = default;

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

/// Retry until the deadline: ctest starts servers in the background, so the
/// first connect may race the bind.
bool connect_with_retry(const std::function<int()>& try_connect, int timeout_ms,
                        int* fd_out, std::string* error) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = try_connect();
    if (fd >= 0) {
      *fd_out = fd;
      return true;
    }
    if (Clock::now() >= deadline) {
      if (error) *error = std::string("connect: ") + errno_string();
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace

bool Client::connect_unix(const std::string& path, int timeout_ms,
                          std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (error) *error = "socket path too long: " + path;
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return connect_with_retry(
      [&]() -> int {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) return -1;
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr) == 0) {
          set_send_timeout(fd, 10);
          return fd;
        }
        const int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
      },
      timeout_ms, &fd_, error);
}

bool Client::connect_tcp(int port, int timeout_ms, std::string* error) {
  close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  return connect_with_retry(
      [&]() -> int {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) return -1;
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr) == 0) {
          set_send_timeout(fd, 10);
          return fd;
        }
        const int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
      },
      timeout_ms, &fd_, error);
}

bool Client::send(const std::string& payload, std::string* error) {
  if (fd_ < 0) {
    if (error) *error = "not connected";
    return false;
  }
  if (send_all(fd_, encode_frame(payload))) return true;
  if (error) *error = std::string("send: ") + errno_string();
  return false;
}

bool Client::recv(std::string* payload, int timeout_ms, std::string* error) {
  if (fd_ < 0) {
    if (error) *error = "not connected";
    return false;
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  char buf[4096];
  for (;;) {
    std::string err;
    const FrameDecoder::Outcome out = decoder_.next(payload, &err);
    if (out == FrameDecoder::Outcome::kFrame) return true;
    if (out == FrameDecoder::Outcome::kError) {
      if (error) *error = err;
      return false;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) {
      if (error) *error = "timed out waiting for a response frame";
      return false;
    }
    pollfd p{fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, static_cast<int>(left.count()));
    if (pr < 0) {
      if (errno == EINTR) continue;
      if (error) *error = std::string("poll: ") + errno_string();
      return false;
    }
    if (pr == 0) continue;  // loop re-checks the deadline
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n < 0) {
      if (error) *error = std::string("read: ") + errno_string();
      return false;
    }
    if (n == 0) {
      if (error) *error = "server closed the connection";
      return false;
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace fstg::serve
