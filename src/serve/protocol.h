#pragma once

#include <cstdint>
#include <string>

#include "base/robust/budget.h"

namespace fstg::serve {

/// --- `fstg serve` wire protocol ------------------------------------------
///
/// Length-prefixed JSON frames over a Unix or TCP stream socket: each
/// message is a 4-byte little-endian payload length followed by exactly
/// that many bytes of UTF-8 JSON. The prefix makes torn reads detectable
/// (an incomplete frame is simply "need more bytes") and caps a hostile
/// length up front — a frame longer than the negotiated maximum is a
/// protocol error before a single payload byte is buffered.
///
/// Payloads are schema-validated JSON documents: requests are
/// `fstg.serve_request.v1`, responses `fstg.serve_response.v1`
/// (schemas/fstg_serve_{request,response}.schema.json, enforced by the
/// obs::validate_serve_*_json mirrors). The full protocol, including the
/// shedding and exit-code semantics, is documented in docs/SERVING.md.

/// Bytes of the little-endian length prefix.
inline constexpr std::size_t kFramePrefixBytes = 4;

/// Default cap on one frame's payload. Requests embed at most a KISS2
/// machine and a test file; 4 MiB is orders of magnitude above both.
inline constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;

/// Frame `payload` for the wire (prefix + bytes). Payloads above 2^32-1
/// bytes cannot be framed; callers keep them under the frame cap anyway.
std::string encode_frame(const std::string& payload);

/// Incremental decoder for one stream direction. Feed raw socket bytes,
/// then drain complete frames. A frame whose prefix exceeds the cap is a
/// sticky error: the stream cannot be resynchronized past an untrusted
/// length, so the connection must be dropped.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  enum class Outcome {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< *payload holds the next frame
    kError,     ///< protocol violation (*error set); decoder is dead
  };

  void feed(const char* data, std::size_t n);
  Outcome next(std::string* payload, std::string* error);

  std::size_t buffered_bytes() const { return buf_.size(); }

 private:
  std::string buf_;
  std::size_t max_frame_bytes_;
  bool dead_ = false;
  std::string dead_error_;
};

/// One parsed request. `type` is gen|sim|lint|metrics|ping|shutdown.
/// Pipeline requests name a built-in benchmark (`circuit`) or carry inline
/// KISS2 text (`kiss2`); sim additionally carries a test file (`tests`,
/// atpg/test_io.h format). Budget fields default to 0 = server default.
struct ServeRequest {
  std::string id;       ///< client-chosen correlation id (echoed back)
  std::string type;
  std::string circuit;
  std::string kiss2;
  std::string tests;
  int uio = 0;          ///< GeneratorOptions::uio_max_length
  int xfer = 1;         ///< GeneratorOptions::transfer_max_length
  /// sim only: run the static implication pre-flight and prune faults it
  /// proves untestable before simulation (GateLevelOptions::static_prune).
  bool static_prune = false;
  robust::Budget budget;
};

/// Parse + validate one request payload. False (with *error) on anything
/// malformed: bad JSON, wrong schema tag, unknown type, out-of-range
/// numbers. Never throws — this is the socket-facing trust boundary.
bool parse_serve_request(const std::string& text, ServeRequest* request,
                         std::string* error);

/// Render a request as schema fstg.serve_request.v1 (clients, tests).
std::string serve_request_to_json(const ServeRequest& request);

/// One response. `status` is ok|parse|error|budget|overloaded; `error` is
/// non-empty exactly when status != ok. `result_json` is a pre-rendered
/// JSON *object* embedded verbatim as the `result` field (e.g. a
/// fstg.metrics.v1 or fstg.lint.v1 document).
struct ServeResponse {
  std::string id;
  std::string type;
  std::string status = "ok";
  std::string error;
  double wall_ms = 0.0;
  std::string result_json = "{}";
};

/// Render as schema fstg.serve_response.v1. Self-checking like every JSON
/// writer here: the document is validated against the schema mirror before
/// it is returned; a malformed writer throws instead of reaching the wire.
std::string serve_response_to_json(const ServeResponse& response);

/// Client-side parse of one response payload (the result object is
/// validated but not extracted). False (with *error) on malformed input.
bool parse_serve_response(const std::string& text, ServeResponse* response,
                          std::string* error);

/// JSON string literal (quotes included) with full escaping: `"` `\`
/// and every control byte (named escapes where JSON has them, \u00XX
/// otherwise). Unlike the telemetry writer's minimal escaper, serve
/// payloads embed arbitrary client strings and multi-line documents.
std::string json_quote(const std::string& s);

}  // namespace fstg::serve
