#pragma once

#include <cstdint>
#include <vector>

#include "fsm/state_table.h"

namespace fstg {

/// The option the paper mentions but does not explore (Section 1): "For a
/// state that does not have a unique input-output sequence, it is possible
/// to use a subset of sequences, with each sequence distinguishing the
/// state from a different subset of states."
///
/// A subset-UIO for state s is a small set of input sequences such that
/// every other state is distinguished from s by at least one of them.
struct UioSubset {
  bool complete = false;  ///< every other state distinguished
  std::vector<std::vector<std::uint32_t>> sequences;
  /// distinguished[k] = states separated from the owner by sequences[k].
  std::vector<std::vector<int>> distinguished;

  std::size_t size() const { return sequences.size(); }
  std::size_t total_length() const;
};

struct UioSubsetOptions {
  int max_length = 0;          ///< per-sequence bound; 0 = state_bits()
  std::size_t max_sequences = 8;
};

/// Greedy set cover over pairwise distinguishing sequences: repeatedly add
/// the candidate sequence separating the most still-undistinguished
/// states. `complete` is false if some state is outright equivalent to s
/// (then no set of sequences can ever work) or the sequence budget ran out.
UioSubset derive_uio_subset(const StateTable& table, int state,
                            const UioSubsetOptions& options = {});

/// Statistics across all states (the ablation bench's payload).
struct UioSubsetStats {
  int states_with_single_uio = 0;
  int states_with_subset_only = 0;  ///< no single UIO, but a complete subset
  int states_uncoverable = 0;       ///< equivalent twin exists / budget out
  double average_subset_size = 0.0;  ///< over subset-only states
};

UioSubsetStats uio_subset_stats(const StateTable& table,
                                const UioSubsetOptions& options = {});

}  // namespace fstg
