#include "seq/uio_subset.h"

#include <algorithm>

#include "base/error.h"
#include "seq/distinguishing.h"
#include "seq/uio.h"

namespace fstg {

std::size_t UioSubset::total_length() const {
  std::size_t n = 0;
  for (const auto& s : sequences) n += s.size();
  return n;
}

UioSubset derive_uio_subset(const StateTable& table, int state,
                            const UioSubsetOptions& options) {
  require(state >= 0 && state < table.num_states(),
          "derive_uio_subset: bad state");
  const int max_length =
      options.max_length > 0 ? options.max_length : table.state_bits();

  UioSubset result;

  // Candidate pool: a shortest pairwise distinguishing sequence per other
  // state, capped at max_length. A state with no (bounded) pairwise
  // sequence cannot be covered at all.
  std::vector<std::vector<std::uint32_t>> candidates;
  std::vector<int> uncovered;
  for (int other = 0; other < table.num_states(); ++other) {
    if (other == state) continue;
    auto seq = distinguishing_sequence(table, state, other);
    if (!seq.has_value() ||
        seq->size() > static_cast<std::size_t>(max_length)) {
      uncovered.push_back(other);
      continue;
    }
    candidates.push_back(std::move(*seq));
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Which states each candidate separates from `state`.
  std::vector<int> remaining;
  for (int other = 0; other < table.num_states(); ++other)
    if (other != state &&
        std::find(uncovered.begin(), uncovered.end(), other) ==
            uncovered.end())
      remaining.push_back(other);

  auto separates = [&](const std::vector<std::uint32_t>& seq, int other) {
    return table.trace(state, seq) != table.trace(other, seq);
  };

  while (!remaining.empty() &&
         result.sequences.size() < options.max_sequences) {
    std::size_t best = candidates.size();
    std::vector<int> best_covered;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      std::vector<int> covered;
      for (int other : remaining)
        if (separates(candidates[c], other)) covered.push_back(other);
      if (covered.size() > best_covered.size()) {
        best_covered = std::move(covered);
        best = c;
      }
    }
    if (best == candidates.size()) break;  // no candidate helps (impossible
                                           // unless remaining is empty)
    result.sequences.push_back(candidates[best]);
    result.distinguished.push_back(best_covered);
    std::vector<int> next;
    for (int other : remaining)
      if (std::find(best_covered.begin(), best_covered.end(), other) ==
          best_covered.end())
        next.push_back(other);
    remaining = std::move(next);
  }

  result.complete = remaining.empty() && uncovered.empty();
  return result;
}

UioSubsetStats uio_subset_stats(const StateTable& table,
                                const UioSubsetOptions& options) {
  UioSubsetStats stats;
  UioOptions uio_options;
  uio_options.max_length = options.max_length;
  const UioSet uios = derive_uio_sequences(table, uio_options);

  std::size_t subset_size_sum = 0;
  for (int s = 0; s < table.num_states(); ++s) {
    if (uios.of(s).exists) {
      ++stats.states_with_single_uio;
      continue;
    }
    UioSubset subset = derive_uio_subset(table, s, options);
    if (subset.complete) {
      ++stats.states_with_subset_only;
      subset_size_sum += subset.size();
    } else {
      ++stats.states_uncoverable;
    }
  }
  stats.average_subset_size =
      stats.states_with_subset_only == 0
          ? 0.0
          : static_cast<double>(subset_size_sum) /
                static_cast<double>(stats.states_with_subset_only);
  return stats;
}

}  // namespace fstg
