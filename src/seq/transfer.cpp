#include "seq/transfer.h"

#include <algorithm>
#include <deque>

#include "base/error.h"

namespace fstg {

std::optional<std::vector<std::uint32_t>> find_transfer(
    const StateTable& table, int from, int max_length,
    const std::function<bool(int)>& target) {
  robust::RunGuard guard(robust::Budget{}, "transfer.bfs");
  return find_transfer_guarded(table, from, max_length, target, guard).seq;
}

TransferSearch find_transfer_guarded(const StateTable& table, int from,
                                     int max_length,
                                     const std::function<bool(int)>& target,
                                     robust::RunGuard& guard) {
  require(from >= 0 && from < table.num_states(), "find_transfer: bad state");
  TransferSearch result;
  if (max_length <= 0) return result;

  struct Node {
    int state;
    int parent;
    std::uint32_t via;
    int depth;
  };
  std::vector<Node> arena;
  std::deque<int> queue;
  std::vector<bool> seen(static_cast<std::size_t>(table.num_states()), false);

  arena.push_back({from, -1, 0, 0});
  queue.push_back(0);
  seen[static_cast<std::size_t>(from)] = true;

  while (!queue.empty()) {
    const int id = queue.front();
    queue.pop_front();
    const Node node = arena[static_cast<std::size_t>(id)];
    if (node.depth >= max_length) continue;
    for (std::uint32_t a = 0; a < table.num_input_combos(); ++a) {
      if (!guard.tick()) {
        result.budget_exhausted = true;
        return result;
      }
      const int t = table.next(node.state, a);
      if (target(t)) {
        std::vector<std::uint32_t> seq{a};
        for (int cur = id; cur > 0;
             cur = arena[static_cast<std::size_t>(cur)].parent)
          seq.push_back(arena[static_cast<std::size_t>(cur)].via);
        std::reverse(seq.begin(), seq.end());
        result.seq = std::move(seq);
        return result;
      }
      if (seen[static_cast<std::size_t>(t)]) continue;
      seen[static_cast<std::size_t>(t)] = true;
      arena.push_back({t, id, a, node.depth + 1});
      queue.push_back(static_cast<int>(arena.size()) - 1);
    }
  }
  return result;
}

}  // namespace fstg
