#include "seq/uio.h"

#include <algorithm>
#include <deque>
#include <string>
#include <unordered_set>

#include "base/error.h"
#include "base/store/serial.h"

namespace fstg {

int UioSet::count() const {
  int n = 0;
  for (const auto& u : per_state) n += u.exists ? 1 : 0;
  return n;
}

int UioSet::max_length() const {
  int m = 0;
  for (const auto& u : per_state)
    if (u.exists) m = std::max(m, u.length());
  return m;
}

int UioSet::aborted_states() const {
  int n = 0;
  for (const auto& u : per_state) n += u.aborted ? 1 : 0;
  return n;
}

namespace {

/// BFS node: current state of the owner's trace plus the deduplicated,
/// sorted current states of all not-yet-distinguished other states.
struct Node {
  int cur = 0;
  std::vector<int> alive;
  int parent = -1;          ///< index into the node arena
  std::uint32_t via = 0;    ///< input that produced this node
  int depth = 0;
};

std::string node_key(int cur, const std::vector<int>& alive) {
  std::string key;
  key.reserve(alive.size() + 1);
  key.push_back(static_cast<char>(cur));
  for (int s : alive) key.push_back(static_cast<char>(s));
  return key;
}

UioSequence search_state(const StateTable& table, int s, int max_len,
                         std::uint64_t eval_budget, robust::RunGuard& guard) {
  UioSequence result;
  const std::uint32_t nic = table.num_input_combos();

  std::vector<Node> arena;
  std::deque<int> queue;
  std::unordered_set<std::string> visited;

  Node root;
  root.cur = s;
  for (int t = 0; t < table.num_states(); ++t)
    if (t != s) root.alive.push_back(t);
  if (root.alive.empty()) {
    // Single-state machine: the empty sequence is (vacuously) unique, but
    // the paper's tests need at least one input; report non-existent.
    return result;
  }
  visited.insert(node_key(root.cur, root.alive));
  arena.push_back(std::move(root));
  queue.push_back(0);

  std::uint64_t evals = 0;
  std::vector<int> next_alive;
  while (!queue.empty()) {
    const int node_id = queue.front();
    queue.pop_front();
    // Copy the POD bits we need: arena may reallocate on push_back.
    const int depth = arena[static_cast<std::size_t>(node_id)].depth;
    if (depth >= max_len) continue;
    const int cur = arena[static_cast<std::size_t>(node_id)].cur;

    for (std::uint32_t a = 0; a < nic; ++a) {
      const std::uint64_t work =
          arena[static_cast<std::size_t>(node_id)].alive.size();
      evals += work;
      if (evals > eval_budget) return result;  // budget hit: treat as none
      if (!guard.tick(work)) {
        result.aborted = true;  // derivation budget: typed partial result
        return result;
      }

      const std::uint32_t out = table.output(cur, a);
      const int next_cur = table.next(cur, a);
      next_alive.clear();
      for (int t : arena[static_cast<std::size_t>(node_id)].alive) {
        if (table.output(t, a) != out) continue;  // distinguished now
        next_alive.push_back(table.next(t, a));
      }
      std::sort(next_alive.begin(), next_alive.end());
      next_alive.erase(std::unique(next_alive.begin(), next_alive.end()),
                       next_alive.end());

      if (next_alive.empty()) {
        // Found: reconstruct the input sequence.
        result.exists = true;
        result.inputs.push_back(a);
        for (int id = node_id; id > 0;
             id = arena[static_cast<std::size_t>(id)].parent)
          result.inputs.push_back(arena[static_cast<std::size_t>(id)].via);
        std::reverse(result.inputs.begin(), result.inputs.end());
        result.final_state = table.run(s, result.inputs);
        return result;
      }
      // If some undistinguished state collapsed onto the trace state, this
      // branch can never separate it; prune.
      if (std::binary_search(next_alive.begin(), next_alive.end(), next_cur))
        continue;
      if (depth + 1 >= max_len) continue;  // child could not extend anyway

      std::string key = node_key(next_cur, next_alive);
      if (!visited.insert(std::move(key)).second) continue;
      if (!guard.charge_memory(sizeof(Node) +
                               next_alive.size() * sizeof(int))) {
        result.aborted = true;
        return result;
      }
      Node child;
      child.cur = next_cur;
      child.alive = next_alive;
      child.parent = node_id;
      child.via = a;
      child.depth = depth + 1;
      arena.push_back(std::move(child));
      queue.push_back(static_cast<int>(arena.size()) - 1);
    }
  }
  return result;
}

}  // namespace

UioSet derive_uio_sequences(const StateTable& table,
                            const UioOptions& options) {
  require(table.num_states() <= 127,
          "UIO derivation supports up to 127 states");
  const int max_len = options.effective_max_length(table);
  UioSet set;
  set.per_state.resize(static_cast<std::size_t>(table.num_states()));
  robust::RunGuard guard(options.budget, "uio.search");
  for (int s = 0; s < table.num_states(); ++s) {
    UioSequence& slot = set.per_state[static_cast<std::size_t>(s)];
    if (guard.exhausted()) {
      // Budget spent on an earlier state: the rest are aborted unsearched.
      slot.aborted = true;
      continue;
    }
    UioSequence u = search_state(table, s, max_len, options.eval_budget, guard);
    if (u.exists) require(verify_uio(table, s, u.inputs),
                          "internal error: derived UIO failed verification");
    slot = std::move(u);
  }
  set.trip = guard.trip();
  return set;
}

bool verify_uio(const StateTable& table, int state,
                const std::vector<std::uint32_t>& seq) {
  if (seq.empty()) return false;
  const std::vector<std::uint32_t> ref = table.trace(state, seq);
  for (int t = 0; t < table.num_states(); ++t) {
    if (t == state) continue;
    if (table.trace(t, seq) == ref) return false;
  }
  return true;
}

void serialize_uio_set(const UioSet& uios, store::BlobWriter& w) {
  w.u8(static_cast<std::uint8_t>(uios.trip));
  w.u64(uios.per_state.size());
  for (const UioSequence& u : uios.per_state) {
    w.u8(u.exists ? 1 : 0);
    w.u8(u.aborted ? 1 : 0);
    w.i32(u.final_state);
    w.vec_u32(u.inputs);
  }
}

bool deserialize_uio_set(store::BlobReader& r, UioSet* out) {
  UioSet uios;
  const std::uint8_t trip = r.u8();
  if (trip > static_cast<std::uint8_t>(robust::BudgetTrip::kInjected))
    return false;
  uios.trip = static_cast<robust::BudgetTrip>(trip);
  const std::uint64_t n = r.u64();
  // Each state record is at least 6 bytes + an 8-byte vector length.
  if (!r.ok() || n * 14 > r.remaining()) return false;
  const int num_states = static_cast<int>(n);
  uios.per_state.resize(n);
  for (UioSequence& u : uios.per_state) {
    const std::uint8_t exists = r.u8();
    const std::uint8_t aborted = r.u8();
    if (exists > 1 || aborted > 1) return false;
    u.exists = exists != 0;
    u.aborted = aborted != 0;
    u.final_state = r.i32();
    u.inputs = r.vec_u32();
    if (!r.ok()) return false;
    if (u.exists && (u.final_state < 0 || u.final_state >= num_states ||
                     u.inputs.empty()))
      return false;
    if (!u.exists && (u.final_state != -1 || !u.inputs.empty())) return false;
  }
  *out = std::move(uios);
  return true;
}

}  // namespace fstg
