#include "seq/ads.h"

#include <algorithm>
#include <map>
#include <string>

#include "base/error.h"

namespace fstg {

namespace {

/// A configuration: the still-undistinguished initial states and where
/// their traces currently sit.
struct Pair {
  int init;
  int cur;
};

std::string canonical(std::vector<Pair> group) {
  std::sort(group.begin(), group.end(), [](const Pair& a, const Pair& b) {
    return a.init != b.init ? a.init < b.init : a.cur < b.cur;
  });
  std::string key;
  key.reserve(group.size() * 2);
  for (const Pair& p : group) {
    key.push_back(static_cast<char>(p.init));
    key.push_back(static_cast<char>(p.cur));
  }
  return key;
}

enum class Status : std::uint8_t { kInProgress, kFailed, kSolved };

class AdsSearch {
 public:
  AdsSearch(const StateTable& table, std::uint64_t budget)
      : table_(table), budget_(budget) {}

  /// Returns the node index of a solved configuration, or -1.
  int solve(const std::vector<Pair>& group, AdsTree& tree) {
    if (group.size() == 1) {
      tree.nodes.push_back({true, group[0].init, 0, {}});
      return static_cast<int>(tree.nodes.size()) - 1;
    }
    const std::string key = canonical(group);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      switch (it->second.first) {
        case Status::kSolved: return it->second.second;
        case Status::kFailed: return -1;
        case Status::kInProgress: return -1;  // cycle: fail this path
      }
    }
    if (budget_ == 0) return -1;
    --budget_;
    memo_[key] = {Status::kInProgress, -1};

    // Try splitting inputs first (they terminate branches), then chains.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::uint32_t x = 0; x < table_.num_input_combos(); ++x) {
        if (!admissible(group, x)) continue;
        std::map<std::uint32_t, std::vector<Pair>> classes;
        for (const Pair& p : group)
          classes[table_.output(p.cur, x)].push_back(
              {p.init, table_.next(p.cur, x)});
        const bool splits = classes.size() >= 2;
        if ((pass == 0) != splits) continue;

        std::vector<std::pair<std::uint32_t, int>> children;
        bool ok = true;
        for (const auto& [out, sub] : classes) {
          const int child = solve(sub, tree);
          if (child < 0) {
            ok = false;
            break;
          }
          children.emplace_back(out, child);
        }
        if (!ok) continue;
        tree.nodes.push_back({false, -1, x, std::move(children)});
        const int id = static_cast<int>(tree.nodes.size()) - 1;
        memo_[key] = {Status::kSolved, id};
        return id;
      }
    }
    memo_[key] = {Status::kFailed, -1};
    return -1;
  }

 private:
  /// Admissible: the input never merges two still-undistinguished states
  /// that also agree on the output (those could never be told apart later).
  bool admissible(const std::vector<Pair>& group, std::uint32_t x) const {
    for (std::size_t i = 0; i < group.size(); ++i) {
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        if (group[i].cur == group[j].cur) return false;  // already merged
        if (table_.output(group[i].cur, x) == table_.output(group[j].cur, x) &&
            table_.next(group[i].cur, x) == table_.next(group[j].cur, x))
          return false;
      }
    }
    return true;
  }

  const StateTable& table_;
  std::uint64_t budget_;
  std::map<std::string, std::pair<Status, int>> memo_;
};

}  // namespace

int AdsTree::depth() const {
  if (!exists || nodes.empty()) return 0;
  // Nodes form a DAG (subtrees are shared via memoization); depth by
  // memoized recursion over indices.
  std::vector<int> depth_of(nodes.size(), -1);
  // Children indices are always smaller than their parent's (children are
  // pushed first), so a single ascending pass suffices.
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    if (nodes[n].leaf) {
      depth_of[n] = 0;
      continue;
    }
    int d = 0;
    for (const auto& [out, child] : nodes[n].children)
      d = std::max(d, depth_of[static_cast<std::size_t>(child)]);
    depth_of[n] = d + 1;
  }
  return depth_of.back();
}

AdsTree derive_ads(const StateTable& table, const AdsOptions& options) {
  require(table.num_states() <= 120, "derive_ads: supports up to 120 states");
  AdsTree tree;
  std::vector<Pair> root;
  for (int s = 0; s < table.num_states(); ++s) root.push_back({s, s});
  if (table.num_states() == 1) {
    tree.exists = true;
    tree.nodes.push_back({true, 0, 0, {}});
    return tree;
  }
  AdsSearch search(table, options.budget);
  const int root_node = search.solve(root, tree);
  tree.exists = root_node >= 0;
  if (tree.exists) {
    // The root must be the last node pushed (its children precede it).
    require(root_node == static_cast<int>(tree.nodes.size()) - 1,
            "derive_ads: internal arena ordering violated");
  } else {
    tree.nodes.clear();
  }
  return tree;
}

int identify_state(const StateTable& table, const AdsTree& tree,
                   int actual_state) {
  require(tree.exists, "identify_state: no ADS");
  int node = static_cast<int>(tree.nodes.size()) - 1;  // root
  int cur = actual_state;
  while (!tree.nodes[static_cast<std::size_t>(node)].leaf) {
    const AdsTree::Node& n = tree.nodes[static_cast<std::size_t>(node)];
    const std::uint32_t out = table.output(cur, n.input);
    cur = table.next(cur, n.input);
    int next_node = -1;
    for (const auto& [branch_out, child] : n.children)
      if (branch_out == out) next_node = child;
    require(next_node >= 0, "identify_state: observed output has no branch");
    node = next_node;
  }
  return tree.nodes[static_cast<std::size_t>(node)].state;
}

}  // namespace fstg
