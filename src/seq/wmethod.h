#pragma once

#include <cstdint>
#include <vector>

#include "atpg/test.h"
#include "fsm/state_table.h"

namespace fstg {

/// Chow's W-method (1978), adapted to full scan — the classical
/// characterization-set alternative to the paper's UIO-based procedure. A
/// characterization set W is a set of input sequences that jointly
/// distinguish every pair of states. Under full scan, each transition
/// s --a--> t is tested by |W| scan tests (scan in s, apply a then w, for
/// every w in W): the outputs of w identify t without relying on t having
/// a UIO. Complete by construction for minimal machines, but the test
/// count multiplies by |W| — the trade the paper's procedure avoids.
struct WMethodResult {
  /// The characterization set (empty if the machine has equivalent states,
  /// in which case no W exists).
  std::vector<std::vector<std::uint32_t>> w_set;
  bool machine_is_minimal = false;
  TestSet tests;
};

/// Derive a small W via greedy set cover over pairwise distinguishing
/// sequences, then emit the transition-cover x W scan tests.
WMethodResult w_method_tests(const StateTable& table);

}  // namespace fstg
