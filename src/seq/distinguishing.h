#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "base/robust/budget.h"
#include "fsm/state_table.h"

namespace fstg {

/// Shortest input sequence whose output traces from states `a` and `b`
/// differ (pairwise distinguishing sequence), or nullopt if the states are
/// equivalent. BFS over the pair graph; used by tests as an independent
/// oracle for UIO verification and by the design-validation example.
std::optional<std::vector<std::uint32_t>> distinguishing_sequence(
    const StateTable& table, int a, int b);

/// Typed outcome of a budgeted pair search (see TransferSearch): an empty
/// `seq` with `budget_exhausted` set means the BFS was cut short, not that
/// the states are equivalent.
struct DistinguishingSearch {
  std::optional<std::vector<std::uint32_t>> seq;
  bool budget_exhausted = false;
};

/// Budgeted variant: checks `guard` at every pair expansion.
DistinguishingSearch distinguishing_sequence_guarded(const StateTable& table,
                                                     int a, int b,
                                                     robust::RunGuard& guard);

}  // namespace fstg
