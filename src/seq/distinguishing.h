#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fsm/state_table.h"

namespace fstg {

/// Shortest input sequence whose output traces from states `a` and `b`
/// differ (pairwise distinguishing sequence), or nullopt if the states are
/// equivalent. BFS over the pair graph; used by tests as an independent
/// oracle for UIO verification and by the design-validation example.
std::optional<std::vector<std::uint32_t>> distinguishing_sequence(
    const StateTable& table, int a, int b);

}  // namespace fstg
