#include "seq/distinguishing.h"

#include <algorithm>
#include <deque>

#include "base/error.h"

namespace fstg {

std::optional<std::vector<std::uint32_t>> distinguishing_sequence(
    const StateTable& table, int a, int b) {
  robust::RunGuard guard(robust::Budget{}, "distinguishing.bfs");
  return distinguishing_sequence_guarded(table, a, b, guard).seq;
}

DistinguishingSearch distinguishing_sequence_guarded(const StateTable& table,
                                                     int a, int b,
                                                     robust::RunGuard& guard) {
  require(a >= 0 && a < table.num_states() && b >= 0 && b < table.num_states(),
          "distinguishing_sequence: bad state");
  DistinguishingSearch result;
  if (a == b) return result;

  const int n = table.num_states();
  struct Node {
    int a, b, parent;
    std::uint32_t via;
  };
  std::vector<Node> arena;
  std::deque<int> queue;
  std::vector<bool> seen(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                         false);
  auto pair_index = [n](int x, int y) {
    if (x > y) std::swap(x, y);
    return static_cast<std::size_t>(x) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(y);
  };

  arena.push_back({a, b, -1, 0});
  queue.push_back(0);
  seen[pair_index(a, b)] = true;

  while (!queue.empty()) {
    const int id = queue.front();
    queue.pop_front();
    const Node node = arena[static_cast<std::size_t>(id)];
    for (std::uint32_t ic = 0; ic < table.num_input_combos(); ++ic) {
      if (!guard.tick()) {
        result.budget_exhausted = true;
        return result;
      }
      if (table.output(node.a, ic) != table.output(node.b, ic)) {
        std::vector<std::uint32_t> seq{ic};
        for (int cur = id; cur > 0;
             cur = arena[static_cast<std::size_t>(cur)].parent)
          seq.push_back(arena[static_cast<std::size_t>(cur)].via);
        std::reverse(seq.begin(), seq.end());
        result.seq = std::move(seq);
        return result;
      }
      const int na = table.next(node.a, ic);
      const int nb = table.next(node.b, ic);
      if (na == nb) continue;  // merged: this branch can never distinguish
      if (seen[pair_index(na, nb)]) continue;
      seen[pair_index(na, nb)] = true;
      arena.push_back({na, nb, id, ic});
      queue.push_back(static_cast<int>(arena.size()) - 1);
    }
  }
  return result;
}

}  // namespace fstg
