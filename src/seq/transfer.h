#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "base/robust/budget.h"
#include "fsm/state_table.h"

namespace fstg {

/// Shortest input sequence of length 1..max_length from `from` to any state
/// satisfying `target`, exploring inputs in ascending order (so ties match
/// the paper's deterministic walkthrough). Returns nullopt if none exists.
/// `from` itself is not tested against `target` (the caller has already
/// decided it needs to move).
std::optional<std::vector<std::uint32_t>> find_transfer(
    const StateTable& table, int from, int max_length,
    const std::function<bool(int)>& target);

/// Typed outcome of a budgeted transfer search: `budget_exhausted`
/// distinguishes "the budget ended the BFS early" (a transfer may still
/// exist) from "no transfer exists within max_length". In both cases the
/// generator's fallback — end the test with a scan-out — is sound.
struct TransferSearch {
  std::optional<std::vector<std::uint32_t>> seq;
  bool budget_exhausted = false;
};

/// Budgeted variant: checks `guard` at every BFS expansion and returns a
/// typed partial result on exhaustion instead of running unbounded.
TransferSearch find_transfer_guarded(const StateTable& table, int from,
                                     int max_length,
                                     const std::function<bool(int)>& target,
                                     robust::RunGuard& guard);

}  // namespace fstg
