#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "fsm/state_table.h"

namespace fstg {

/// Shortest input sequence of length 1..max_length from `from` to any state
/// satisfying `target`, exploring inputs in ascending order (so ties match
/// the paper's deterministic walkthrough). Returns nullopt if none exists.
/// `from` itself is not tested against `target` (the caller has already
/// decided it needs to move).
std::optional<std::vector<std::uint32_t>> find_transfer(
    const StateTable& table, int from, int max_length,
    const std::function<bool(int)>& target);

}  // namespace fstg
