#include "seq/wmethod.h"

#include <algorithm>
#include <utility>

#include "base/error.h"
#include "seq/distinguishing.h"

namespace fstg {

WMethodResult w_method_tests(const StateTable& table) {
  WMethodResult result;
  const int n = table.num_states();

  // Candidate pool: one shortest pairwise distinguishing sequence per
  // state pair. Any unresolvable pair means the machine is not minimal.
  std::vector<std::pair<int, int>> pairs;
  std::vector<std::vector<std::uint32_t>> candidates;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      auto seq = distinguishing_sequence(table, a, b);
      if (!seq.has_value()) return result;  // equivalent states: no W
      pairs.emplace_back(a, b);
      candidates.push_back(std::move(*seq));
    }
  }
  result.machine_is_minimal = true;
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Greedy cover: pick the candidate separating the most uncovered pairs.
  std::vector<bool> covered(pairs.size(), false);
  std::size_t remaining = pairs.size();
  auto separates = [&](const std::vector<std::uint32_t>& seq,
                       const std::pair<int, int>& p) {
    return table.trace(p.first, seq) != table.trace(p.second, seq);
  };
  while (remaining > 0) {
    std::size_t best = candidates.size();
    std::size_t best_gain = 0;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      std::size_t gain = 0;
      for (std::size_t p = 0; p < pairs.size(); ++p)
        if (!covered[p] && separates(candidates[c], pairs[p])) ++gain;
      if (gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    require(best < candidates.size(), "w_method: cover stalled");
    result.w_set.push_back(candidates[best]);
    for (std::size_t p = 0; p < pairs.size(); ++p)
      if (!covered[p] && separates(candidates[best], pairs[p])) {
        covered[p] = true;
        --remaining;
      }
  }

  // Transition cover x W: one scan test per (transition, w).
  for (int s = 0; s < n; ++s) {
    for (std::uint32_t ic = 0; ic < table.num_input_combos(); ++ic) {
      for (const auto& w : result.w_set) {
        FunctionalTest t;
        t.init_state = s;
        t.inputs.push_back(ic);
        t.inputs.insert(t.inputs.end(), w.begin(), w.end());
        t.final_state = table.run(s, t.inputs);
        result.tests.tests.push_back(std::move(t));
      }
    }
  }
  return result;
}

}  // namespace fstg
