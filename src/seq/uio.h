#pragma once

#include <cstdint>
#include <vector>

#include "base/robust/budget.h"
#include "fsm/state_table.h"

namespace fstg::store {
class BlobWriter;
class BlobReader;
}  // namespace fstg::store

namespace fstg {

/// Limits for UIO derivation. The paper bounds sequence length by L
/// (default L = number of state variables, so applying a UIO never costs
/// more clocks than a scan operation); the evaluation budget bounds the
/// BFS work per state so pathological machines degrade to "no UIO found",
/// which is sound — it only removes optional test chaining. `budget`
/// additionally bounds the whole derivation (wall clock, total expansions,
/// arena memory estimate); exhaustion marks the remaining states
/// `aborted` and the generator falls back to scan-out for them.
struct UioOptions {
  int max_length = 0;  ///< 0 means "use the machine's state_bits()"
  std::uint64_t eval_budget = 50'000'000;  ///< child evaluations per state
  robust::Budget budget;  ///< whole-derivation envelope (default unlimited)

  int effective_max_length(const StateTable& table) const {
    return max_length > 0 ? max_length : table.state_bits();
  }
};

/// A unique input-output sequence for one state: input sequence whose
/// output trace from the owner state differs from the trace out of every
/// other state. `final_state` is where the sequence leaves the machine
/// when applied from the owner state.
struct UioSequence {
  bool exists = false;
  /// The search for this state hit the derivation budget before finishing;
  /// "no UIO" is then a budget artifact, not a proof of non-existence.
  bool aborted = false;
  std::vector<std::uint32_t> inputs;
  int final_state = -1;

  int length() const { return static_cast<int>(inputs.size()); }
};

/// UIO sequences for every state (the paper keeps at most one per state).
/// A budget-exhausted derivation is a *typed partial result*: states whose
/// search was cut short are marked aborted and `trip` records which limit
/// ended the run; everything derived before the trip is still valid.
struct UioSet {
  std::vector<UioSequence> per_state;
  robust::BudgetTrip trip = robust::BudgetTrip::kNone;

  const UioSequence& of(int state) const {
    return per_state[static_cast<std::size_t>(state)];
  }
  /// Number of states that have a UIO (Table 4 column `unique`).
  int count() const;
  /// Longest UIO found (Table 4 column `m.len`); 0 if none exist.
  int max_length() const;
  /// Number of states whose search the budget cut short.
  int aborted_states() const;
  bool complete() const { return trip == robust::BudgetTrip::kNone; }
};

/// Derive a shortest UIO (length <= L, ties broken by ascending input
/// order) for every state. BFS over nodes (trace state of s, set of current
/// states of still-undistinguished states); two undistinguished states that
/// reach the same current state are merged, and a node whose alive set
/// contains the trace state is pruned (those states can never be told
/// apart). Every returned sequence is re-verified by direct simulation.
UioSet derive_uio_sequences(const StateTable& table,
                            const UioOptions& options = {});

/// Independent check that `seq` distinguishes `state` from every other
/// state by its output trace.
bool verify_uio(const StateTable& table, int state,
                const std::vector<std::uint32_t>& seq);

/// Artifact-store codec (base/store/serial.h). The deserializer returns
/// false — never throws — on structural damage or an out-of-range trip /
/// final state, so a bad payload reads as a cache miss.
void serialize_uio_set(const UioSet& uios, store::BlobWriter& w);
bool deserialize_uio_set(store::BlobReader& r, UioSet* out);

}  // namespace fstg
