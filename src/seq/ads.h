#pragma once

#include <cstdint>
#include <vector>

#include "fsm/state_table.h"

namespace fstg {

/// Adaptive distinguishing sequences (Lee & Yannakakis): a decision tree
/// that identifies the machine's initial state by choosing each next input
/// based on the outputs observed so far. ADSs complete the classical FSM
/// state-verification trichotomy next to the paper's preset UIO sequences
/// and the W-method: stronger than a single preset sequence (an ADS
/// identifies *every* state when it exists) but not always available.
///
/// The derivation here is an exact memoized search over configurations
/// (sets of (initial, current) state pairs): an input is admissible if it
/// never merges two still-indistinguishable states, splitting inputs
/// branch the tree, and non-splitting admissible inputs chain with cycle
/// detection. Success and failure are memoized per configuration, which
/// keeps the search exact (a solvable configuration always has a
/// revisit-free derivation) while bounding work; a node budget turns
/// pathological machines into "not found", which is sound.
struct AdsTree {
  struct Node {
    bool leaf = false;
    int state = -1;           ///< identified initial state (leaves)
    std::uint32_t input = 0;  ///< applied input (internal nodes)
    /// (observed output word, child node index).
    std::vector<std::pair<std::uint32_t, int>> children;
  };

  bool exists = false;
  std::vector<Node> nodes;  ///< node 0 is the root when exists
  /// Length of the longest root-to-leaf input sequence.
  int depth() const;
};

struct AdsOptions {
  std::uint64_t budget = 1'000'000;  ///< configuration expansions
};

AdsTree derive_ads(const StateTable& table, const AdsOptions& options = {});

/// Run the machine from `actual_state`, adaptively following the tree;
/// returns the state the tree identifies (== actual_state iff the tree is
/// correct). Throws if an observed output has no branch (tree invalid).
int identify_state(const StateTable& table, const AdsTree& tree,
                   int actual_state);

}  // namespace fstg
