#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace fstg::analysis {

/// Result of assuming one literal (gate = value) and propagating it to a
/// fixpoint over the netlist's gate constraints plus the learned
/// implication edges. Every recorded assignment holds in *every* input
/// combination where the assumption holds — the propagation rules are all
/// sound implications, so a conflict proves the assumption can never hold.
struct Implications {
  bool conflict = false;
  /// Implied value per gate: -1 unknown, 0, 1. Includes the assumption
  /// itself and the engine's global constants. Empty when `conflict`.
  std::vector<signed char> value;
  /// Gates with a non-global implied value (the assumption's closure),
  /// in derivation order. Empty when `conflict`.
  std::vector<int> assigned;

  signed char value_of(int gate) const {
    return value.empty() ? static_cast<signed char>(-1)
                         : value[static_cast<std::size_t>(gate)];
  }
};

/// Static implication engine over one combinational netlist.
///
/// Construction runs three passes:
///  1. *Direct implications / constant propagation*: ternary forward
///     evaluation folds Const0/Const1 gates through the netlist.
///  2. *Static learning*: every literal of every non-constant gate is
///     assumed and propagated (forward gate evaluation + backward
///     justification, which together realize the direct implication graph
///     and its contrapositive completion). Each derived assignment
///     (m = w) under assumption (g = v) records the contrapositive edge
///     (m = ¬w) → (g = ¬v) — the classic indirect implications that plain
///     per-query propagation cannot reach. A conflict proves the gate
///     constant at the opposite value.
///  3. Newly proven constants are folded back in and learning repeats
///     until no gate changes (reconvergence can cascade).
///
/// Queries (`implications`, `implies`) run propagation again with the
/// learned edges available, so they return the transitive closure of
/// direct + indirect implications. The engine never throws after
/// construction and is immutable (thread-safe to share read-only).
class ImplicationEngine {
 public:
  struct Options {
    /// Skip the quadratic learning pass above this gate count (direct
    /// implications and constant folding still run). 0 = no cap.
    int learn_max_gates = 20000;
  };

  explicit ImplicationEngine(const Netlist& nl)
      : ImplicationEngine(nl, Options()) {}
  ImplicationEngine(const Netlist& nl, const Options& options);

  const Netlist& netlist() const { return *nl_; }

  /// Statically implied constant value of a gate: -1 (unknown), 0, or 1.
  signed char constant(int gate) const {
    return base_[static_cast<std::size_t>(gate)];
  }
  const std::vector<signed char>& constants() const { return base_; }
  std::size_t num_constants() const { return num_constants_; }
  std::size_t num_learned() const { return learned_edges_; }
  bool learning_ran() const { return learning_ran_; }

  /// Closure of assuming (gate = value) on top of the global constants.
  /// `conflict` means the assumption is statically impossible (the gate is
  /// constant at the opposite value).
  Implications implications(int gate, bool value) const;

  /// Joint closure of assuming (g1 = v1) AND (g2 = v2) together.
  /// `conflict` means the two literals can never hold simultaneously —
  /// e.g. a bridge direction whose excitation condition is impossible.
  Implications implications(int g1, bool v1, int g2, bool v2) const;

  /// Does (gate = value) statically imply (other = other_value)?
  bool implies(int gate, bool value, int other, bool other_value) const;

 private:
  int lit(int gate, bool value) const { return 2 * gate + (value ? 1 : 0); }

  /// Assume `count` seed literals on top of `base_` and propagate to
  /// fixpoint. Fills `val` (caller-sized scratch) and `trail` with the
  /// non-base assignments in derivation order; returns false on conflict.
  bool propagate(const int* seed_gates, const bool* seed_values,
                 std::size_t count, std::vector<signed char>& val,
                 std::vector<int>& trail);
  bool propagate(int gate, bool value, std::vector<signed char>& val,
                 std::vector<int>& trail);

  /// One forward/backward consistency step for gate `g` over `val`;
  /// appends new assignments via assign(). Returns false on conflict.
  bool deduce(int g, std::vector<signed char>& val, std::vector<int>& trail,
              std::vector<int>& queue);
  bool assign(int g, bool v, std::vector<signed char>& val,
              std::vector<int>& trail, std::vector<int>& queue);

  void run_learning();

  const Netlist* nl_;
  std::vector<std::vector<int>> fanouts_;
  /// Global constants: -1 unknown, 0, 1.
  std::vector<signed char> base_;
  /// learned_[lit] = literals implied by `lit` beyond gate-constraint
  /// propagation (contrapositives recorded during learning).
  std::vector<std::vector<int>> learned_;
  std::size_t num_constants_ = 0;
  std::size_t learned_edges_ = 0;
  bool learning_ran_ = false;
};

}  // namespace fstg::analysis
