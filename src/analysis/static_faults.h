#pragma once

#include <cstdint>
#include <vector>

#include "analysis/implication.h"
#include "base/bitvec.h"
#include "sim/logic_sim.h"

namespace fstg::analysis {

/// Fault-independent static verdict for one fault. Both untestable
/// verdicts are *proofs*: a fault so classified is combinationally
/// redundant under full scan (the difftest static-redundancy mode
/// cross-checks every verdict against the exhaustive engine).
enum class FaultVerdict : std::uint8_t {
  kUnknown,         ///< static analysis proves nothing; simulate it
  kUnexcitable,     ///< the faulty line is statically stuck at the fault
                    ///< value already (constant or conflicting excitation)
  kUnpropagatable,  ///< every output path is statically blocked: the gate
                    ///< is unobservable, or an implied side-input value
                    ///< holds a dominator at its controlling value
};

const char* fault_verdict_name(FaultVerdict verdict);

struct AnalyzerOptions {
  ImplicationEngine::Options engine;
};

/// Outcome of analyzing one fault list.
struct FaultAnalysis {
  std::vector<FaultVerdict> verdict;  ///< one per input fault
  /// equiv_rep[i] = smallest fault index provably equivalent to fault i
  /// (equiv_rep[i] == i for class representatives and faults the rules do
  /// not cover). Equivalence includes the gate-local pin→stem collapses
  /// plus transitive single-fanout chain rules across gates.
  std::vector<std::size_t> equiv_rep;
  std::size_t unexcitable = 0;
  std::size_t unpropagatable = 0;
  std::size_t equiv_classes = 0;  ///< distinct classes over the list
  std::size_t equiv_merged = 0;   ///< faults with equiv_rep != self

  std::size_t untestable() const { return unexcitable + unpropagatable; }
};

/// Reusable static fault analyzer for one netlist: implication engine +
/// output-dominator chain + (optional, borrowed) forward reachability.
/// Immutable after construction; safe to share read-only across threads.
/// `classify`/`analyze` never throw.
class StaticAnalyzer {
 public:
  /// `reach` may borrow a precomputed forward_reachability(nl) matrix
  /// (must outlive the analyzer); nullptr computes one internally.
  explicit StaticAnalyzer(const Netlist& nl,
                          const AnalyzerOptions& options = {},
                          const std::vector<BitVec>* reach = nullptr);

  const ImplicationEngine& engine() const { return engine_; }
  /// output_dominators(nl) chain (netlist/cones.h sentinels).
  const std::vector<int>& dominators() const { return dom_; }
  /// Does any primary output observe this gate?
  bool observable(int gate) const;

  FaultVerdict classify(const FaultSpec& fault) const;
  FaultAnalysis analyze(const std::vector<FaultSpec>& faults) const;

 private:
  bool reaches(int from, int to) const {
    return (*reach_)[static_cast<std::size_t>(from)].test(
        static_cast<std::size_t>(to));
  }
  /// Walk the dominator chain above `from`, testing whether the closure in
  /// `imp` (fault-free implications of the excitation condition) holds a
  /// controlling value on a side input outside the fault cone of `from`.
  bool propagation_blocked(int from, const Implications& imp) const;
  FaultVerdict classify_stem(int gate, bool value) const;
  FaultVerdict classify_pin(int gate, int pin, bool value) const;
  FaultVerdict classify_bridge(int g1, int g2, bool or_type) const;

  const Netlist* nl_;
  ImplicationEngine engine_;
  std::vector<int> dom_;
  std::vector<BitVec> reach_own_;
  const std::vector<BitVec>* reach_;
};

/// Eagerly register every analysis.* counter so metrics scrapes list a
/// stable catalog even before the first analysis runs (same contract as
/// the serve/cache.hot registration).
void register_analysis_counters();

}  // namespace fstg::analysis
