#include "analysis/implication.h"

#include <algorithm>

namespace fstg::analysis {

namespace {

constexpr signed char kUnknown = -1;

}  // namespace

ImplicationEngine::ImplicationEngine(const Netlist& nl, const Options& options)
    : nl_(&nl) {
  const int n = nl.num_gates();
  fanouts_ = nl.fanouts();
  base_.assign(static_cast<std::size_t>(n), kUnknown);
  learned_.assign(static_cast<std::size_t>(2 * n), {});

  // Pass 1: fold the declared constants through the netlist (ternary
  // forward evaluation; deduce() also fires the backward rules, which is
  // harmless here — everything derived is an unconditional fact).
  {
    std::vector<signed char> val(base_);
    std::vector<int> trail;
    std::vector<int> queue;
    queue.reserve(static_cast<std::size_t>(n));
    for (int g = 0; g < n; ++g) queue.push_back(g);
    bool ok = true;
    for (std::size_t head = 0; head < queue.size() && ok; ++head)
      ok = deduce(queue[head], val, trail, queue);
    // A conflict here would mean the netlist has no consistent evaluation,
    // which a combinational circuit cannot; keep whatever was derived.
    base_ = std::move(val);
  }

  const bool learn = options.learn_max_gates == 0 || n <= options.learn_max_gates;
  if (learn) run_learning();
  num_constants_ = 0;
  for (int g = 0; g < n; ++g)
    if (base_[static_cast<std::size_t>(g)] != kUnknown) ++num_constants_;
}

bool ImplicationEngine::assign(int g, bool v, std::vector<signed char>& val,
                               std::vector<int>& trail,
                               std::vector<int>& queue) {
  signed char& slot = val[static_cast<std::size_t>(g)];
  const signed char want = v ? 1 : 0;
  if (slot == want) return true;
  if (slot != kUnknown) return false;  // conflict
  slot = want;
  trail.push_back(g);
  queue.push_back(g);
  for (int f : fanouts_[static_cast<std::size_t>(g)]) queue.push_back(f);
  // Learned (indirect) implications attached to this literal.
  for (int t : learned_[static_cast<std::size_t>(lit(g, v))]) {
    if (!assign(t >> 1, (t & 1) != 0, val, trail, queue))
      return false;
  }
  return true;
}

bool ImplicationEngine::deduce(int g, std::vector<signed char>& val,
                               std::vector<int>& trail,
                               std::vector<int>& queue) {
  const Gate& gate = nl_->gate(g);
  const signed char out = val[static_cast<std::size_t>(g)];
  auto fanin_val = [&](std::size_t i) {
    return val[static_cast<std::size_t>(gate.fanins[i])];
  };

  switch (gate.type) {
    case GateType::kInput:
      return true;
    case GateType::kConst0:
      return assign(g, false, val, trail, queue);
    case GateType::kConst1:
      return assign(g, true, val, trail, queue);
    case GateType::kBuf:
    case GateType::kNot: {
      if (gate.fanins.empty()) return true;
      const bool invert = gate.type == GateType::kNot;
      const signed char in = fanin_val(0);
      if (in != kUnknown &&
          !assign(g, invert ? in == 0 : in != 0, val, trail, queue))
        return false;
      if (out != kUnknown &&
          !assign(gate.fanins[0], invert ? out == 0 : out != 0, val, trail,
                  queue))
        return false;
      return true;
    }
    default:
      break;
  }

  const std::size_t n = gate.fanins.size();
  if (n == 0) return true;
  int zeros = 0, ones = 0, parity = 0;
  int last_unknown = -1;
  for (std::size_t i = 0; i < n; ++i) {
    const signed char v = fanin_val(i);
    if (v == 0) ++zeros;
    else if (v == 1) { ++ones; parity ^= 1; }
    else last_unknown = gate.fanins[i];
  }
  const int unknowns = static_cast<int>(n) - zeros - ones;
  const bool and_like =
      gate.type == GateType::kAnd || gate.type == GateType::kNand;
  const bool or_like =
      gate.type == GateType::kOr || gate.type == GateType::kNor;
  const bool inverted =
      gate.type == GateType::kNand || gate.type == GateType::kNor ||
      gate.type == GateType::kXnor;

  if (and_like || or_like) {
    const bool ctrl = or_like;  // controlling fanin value: AND 0, OR 1
    const int ctrl_count = or_like ? ones : zeros;
    // Forward: a controlling fanin, or all fanins non-controlling.
    if (ctrl_count > 0) {
      if (!assign(g, ctrl != inverted, val, trail, queue))
        return false;
    } else if (unknowns == 0) {
      if (!assign(g, !ctrl != inverted, val, trail, queue))
        return false;
    }
    const signed char now = val[static_cast<std::size_t>(g)];
    if (now == kUnknown) return true;
    const bool gv = now != 0;
    // Backward: the non-controlled output forces every fanin; the
    // controlled output with one unknown fanin forces that fanin to the
    // controlling value.
    if (gv == (!ctrl != inverted)) {
      for (std::size_t i = 0; i < n; ++i)
        if (!assign(gate.fanins[i], !ctrl, val, trail, queue))
          return false;
    } else if (ctrl_count == 0 && unknowns == 1) {
      if (!assign(last_unknown, ctrl, val, trail, queue))
        return false;
    }
    return true;
  }

  if (gate.type == GateType::kXor || gate.type == GateType::kXnor) {
    if (unknowns == 0) {
      const bool gv = (parity != 0) != inverted;
      if (!assign(g, gv, val, trail, queue)) return false;
    } else if (unknowns == 1 && out != kUnknown) {
      const bool want = ((out != 0) != inverted) != (parity != 0);
      if (!assign(last_unknown, want, val, trail, queue))
        return false;
    }
    return true;
  }
  return true;
}

bool ImplicationEngine::propagate(const int* seed_gates,
                                  const bool* seed_values, std::size_t count,
                                  std::vector<signed char>& val,
                                  std::vector<int>& trail) {
  val.assign(base_.begin(), base_.end());
  trail.clear();
  std::vector<int> queue;
  for (std::size_t i = 0; i < count; ++i)
    if (!assign(seed_gates[i], seed_values[i], val, trail, queue))
      return false;
  for (std::size_t head = 0; head < queue.size(); ++head)
    if (!deduce(queue[head], val, trail, queue)) return false;
  return true;
}

bool ImplicationEngine::propagate(int gate, bool value,
                                  std::vector<signed char>& val,
                                  std::vector<int>& trail) {
  return propagate(&gate, &value, 1, val, trail);
}

void ImplicationEngine::run_learning() {
  const int n = nl_->num_gates();
  std::vector<signed char> val;
  std::vector<int> trail;
  bool changed = true;
  while (changed) {
    changed = false;
    // Rebuild from scratch each round: every edge is re-derived, so a
    // rebuild costs nothing but avoids cross-round duplicates.
    for (auto& edges : learned_) edges.clear();
    learned_edges_ = 0;
    for (int g = 0; g < n; ++g) {
      if (base_[static_cast<std::size_t>(g)] != kUnknown) continue;
      for (int v = 0; v < 2 && base_[static_cast<std::size_t>(g)] == kUnknown;
           ++v) {
        const bool bv = v == 1;
        if (!propagate(g, bv, val, trail)) {
          // The assumption is impossible: the gate is constant at ¬v.
          // Fold it in and re-close the base (new constants cascade).
          base_[static_cast<std::size_t>(g)] =
              static_cast<signed char>(1 - v);
          std::vector<signed char> closed(base_);
          std::vector<int> ctrail;
          std::vector<int> queue;
          for (int x = 0; x < n; ++x) queue.push_back(x);
          bool ok = true;
          for (std::size_t head = 0; head < queue.size() && ok; ++head)
            ok = deduce(queue[head], closed, ctrail, queue);
          if (ok) base_ = std::move(closed);
          changed = true;
          continue;
        }
        // Record contrapositives of everything derived: (m = w) under the
        // assumption (g = v) yields the indirect edge (m = ¬w) → (g = ¬v).
        const int target = lit(g, !bv);
        for (int m : trail) {
          if (m == g) continue;
          const bool w = val[static_cast<std::size_t>(m)] != 0;
          learned_[static_cast<std::size_t>(lit(m, !w))].push_back(target);
          ++learned_edges_;
        }
      }
    }
  }
  learning_ran_ = true;
}

Implications ImplicationEngine::implications(int gate, bool value) const {
  Implications result;
  std::vector<signed char> val;
  std::vector<int> trail;
  // propagate() only mutates scratch state; learned_/base_ are read-only
  // after construction, so the cast is safe (and keeps queries const for
  // read-only sharing across threads).
  ImplicationEngine* self = const_cast<ImplicationEngine*>(this);
  if (!self->propagate(gate, value, val, trail)) {
    result.conflict = true;
    return result;
  }
  result.value = std::move(val);
  result.assigned = std::move(trail);
  return result;
}

Implications ImplicationEngine::implications(int g1, bool v1, int g2,
                                             bool v2) const {
  Implications result;
  std::vector<signed char> val;
  std::vector<int> trail;
  const int gates[2] = {g1, g2};
  const bool values[2] = {v1, v2};
  ImplicationEngine* self = const_cast<ImplicationEngine*>(this);
  if (!self->propagate(gates, values, 2, val, trail)) {
    result.conflict = true;
    return result;
  }
  result.value = std::move(val);
  result.assigned = std::move(trail);
  return result;
}

bool ImplicationEngine::implies(int gate, bool value, int other,
                                bool other_value) const {
  const Implications imp = implications(gate, value);
  if (imp.conflict) return true;  // ex falso: the antecedent never holds
  return imp.value_of(other) == (other_value ? 1 : 0);
}

}  // namespace fstg::analysis
