#include "analysis/static_faults.h"

#include <numeric>

#include "base/obs/metrics.h"
#include "netlist/cones.h"
#include "netlist/reach.h"

namespace fstg::analysis {

const char* fault_verdict_name(FaultVerdict verdict) {
  switch (verdict) {
    case FaultVerdict::kUnknown: return "unknown";
    case FaultVerdict::kUnexcitable: return "unexcitable";
    case FaultVerdict::kUnpropagatable: return "unpropagatable";
  }
  return "?";
}

namespace {

/// Controlling input value of a gate type: 0 for AND/NAND, 1 for OR/NOR,
/// -1 when no single input value controls the output (XOR, BUF, ...).
int controlling_value(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand:
      return 0;
    case GateType::kOr:
    case GateType::kNor:
      return 1;
    default:
      return -1;
  }
}

}  // namespace

StaticAnalyzer::StaticAnalyzer(const Netlist& nl,
                               const AnalyzerOptions& options,
                               const std::vector<BitVec>* reach)
    : nl_(&nl), engine_(nl, options.engine), dom_(output_dominators(nl)) {
  if (reach != nullptr) {
    reach_ = reach;
  } else {
    reach_own_ = forward_reachability(nl);
    reach_ = &reach_own_;
  }
  static const obs::Counter c_runs = obs::counter("analysis.runs");
  static const obs::Counter c_constants = obs::counter("analysis.constants");
  static const obs::Counter c_learned =
      obs::counter("analysis.learned_implications");
  c_runs.inc();
  c_constants.add(engine_.num_constants());
  c_learned.add(engine_.num_learned());
}

bool StaticAnalyzer::observable(int gate) const {
  return dom_[static_cast<std::size_t>(gate)] != kDominatorDead;
}

bool StaticAnalyzer::propagation_blocked(int from,
                                         const Implications& imp) const {
  for (int d = dom_[static_cast<std::size_t>(from)]; d >= 0;
       d = dom_[static_cast<std::size_t>(d)]) {
    const Gate& gate = nl_->gate(d);
    const int ctrl = controlling_value(gate.type);
    if (ctrl < 0) continue;
    for (int s : gate.fanins) {
      // Side inputs only: a fanin inside the fault cone carries a faulty
      // value, so its fault-free implication proves nothing about it.
      if (s == from || reaches(from, s)) continue;
      if (imp.value_of(s) == ctrl) return true;
    }
  }
  return false;
}

FaultVerdict StaticAnalyzer::classify_stem(int gate, bool value) const {
  const signed char cv = engine_.constant(gate);
  if (cv == (value ? 1 : 0)) return FaultVerdict::kUnexcitable;
  if (!observable(gate)) return FaultVerdict::kUnpropagatable;
  // Excitation needs the fault-free line at ¬v; everything that closure
  // implies holds in every exciting test.
  const Implications imp = engine_.implications(gate, !value);
  if (imp.conflict) return FaultVerdict::kUnexcitable;
  if (propagation_blocked(gate, imp)) return FaultVerdict::kUnpropagatable;
  return FaultVerdict::kUnknown;
}

FaultVerdict StaticAnalyzer::classify_pin(int gate, int pin,
                                          bool value) const {
  const Gate& g = nl_->gate(gate);
  if (pin < 0 || static_cast<std::size_t>(pin) >= g.fanins.size())
    return FaultVerdict::kUnknown;
  const int driver = g.fanins[static_cast<std::size_t>(pin)];
  const signed char cv = engine_.constant(driver);
  if (cv == (value ? 1 : 0)) return FaultVerdict::kUnexcitable;
  if (!observable(gate)) return FaultVerdict::kUnpropagatable;
  const Implications imp = engine_.implications(driver, !value);
  if (imp.conflict) return FaultVerdict::kUnexcitable;
  // A branch fault corrupts exactly one pin of `gate`; every other line in
  // the circuit (including the driver's other branches) stays fault-free.
  // First hurdle: the owning gate's own side pins.
  const int ctrl = controlling_value(g.type);
  if (ctrl >= 0) {
    for (std::size_t q = 0; q < g.fanins.size(); ++q) {
      if (static_cast<int>(q) == pin) continue;
      const int s = g.fanins[q];
      // The same driver on another pin carries the fault-free value ¬v.
      const int sv = s == driver ? (value ? 0 : 1) : imp.value_of(s);
      if (sv == ctrl) return FaultVerdict::kUnpropagatable;
    }
  }
  // Beyond `gate` the error flows inside gate's fanout cone only.
  if (propagation_blocked(gate, imp)) return FaultVerdict::kUnpropagatable;
  return FaultVerdict::kUnknown;
}

FaultVerdict StaticAnalyzer::classify_bridge(int g1, int g2,
                                             bool or_type) const {
  // The wired function only changes a line where the two lines differ. If
  // they are statically always equal, the bridge is a no-op.
  const signed char c1 = engine_.constant(g1);
  const signed char c2 = engine_.constant(g2);
  if (c1 != -1 && c1 == c2) return FaultVerdict::kUnexcitable;
  if (engine_.implies(g1, false, g2, false) &&
      engine_.implies(g1, true, g2, true))
    return FaultVerdict::kUnexcitable;
  if (!observable(g1) && !observable(g2))
    return FaultVerdict::kUnpropagatable;
  // Per-direction analysis. The wired function corrupts exactly one line
  // at a time: for wired-AND, line a flips 1→0 only when (a=1, b=0); for
  // wired-OR, a flips 0→1 only when (a=0, b=1) — the other line keeps its
  // fault-free value, so the error is confined to the flipped line's
  // fanout cone and the stem-fault dominator reasoning applies under the
  // *joint* closure of both excitation literals.
  const bool lv = !or_type;  // flipped line's fault-free value
  bool excitable1 = false, excitable2 = false;
  bool blocked1 = true, blocked2 = true;
  {
    const Implications imp = engine_.implications(g1, lv, g2, !lv);
    if (!imp.conflict) {
      excitable1 = true;
      blocked1 = !observable(g1) || propagation_blocked(g1, imp);
    }
  }
  {
    const Implications imp = engine_.implications(g2, lv, g1, !lv);
    if (!imp.conflict) {
      excitable2 = true;
      blocked2 = !observable(g2) || propagation_blocked(g2, imp);
    }
  }
  if (!excitable1 && !excitable2) return FaultVerdict::kUnexcitable;
  if (blocked1 && blocked2) return FaultVerdict::kUnpropagatable;
  return FaultVerdict::kUnknown;
}

FaultVerdict StaticAnalyzer::classify(const FaultSpec& fault) const {
  const int n = nl_->num_gates();
  auto in_range = [n](int g) { return g >= 0 && g < n; };
  switch (fault.kind) {
    case FaultSpec::Kind::kNone:
      return FaultVerdict::kUnknown;
    case FaultSpec::Kind::kStuckGate:
      if (!in_range(fault.gate)) return FaultVerdict::kUnknown;
      return classify_stem(fault.gate, fault.value);
    case FaultSpec::Kind::kStuckPin:
      if (!in_range(fault.gate)) return FaultVerdict::kUnknown;
      return classify_pin(fault.gate, fault.gate2_or_pin, fault.value);
    case FaultSpec::Kind::kBridge:
      if (!in_range(fault.gate) || !in_range(fault.gate2_or_pin))
        return FaultVerdict::kUnknown;
      return classify_bridge(fault.gate, fault.gate2_or_pin, fault.value);
  }
  return FaultVerdict::kUnknown;
}

namespace {

/// Union-find over stem-fault literals (2 * gate + stuck_value).
struct LitUnion {
  std::vector<int> parent;
  explicit LitUnion(int n) : parent(static_cast<std::size_t>(n)) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
  }
};

}  // namespace

FaultAnalysis StaticAnalyzer::analyze(
    const std::vector<FaultSpec>& faults) const {
  FaultAnalysis result;
  result.verdict.assign(faults.size(), FaultVerdict::kUnknown);
  result.equiv_rep.resize(faults.size());
  std::iota(result.equiv_rep.begin(), result.equiv_rep.end(),
            std::size_t{0});

  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultVerdict v = classify(faults[i]);
    result.verdict[i] = v;
    if (v == FaultVerdict::kUnexcitable) ++result.unexcitable;
    if (v == FaultVerdict::kUnpropagatable) ++result.unpropagatable;
  }

  // Equivalence classes over stem literals: single-fanout chain rules
  // merge a driver-line fault with the matching fault on its one fanout
  // gate, transitively across whole fanout-free chains — strictly more
  // than the gate-local pin collapsing in enumerate_stuck_at.
  const int n = nl_->num_gates();
  LitUnion uf(2 * n);
  {
    std::vector<int> fanout_count(static_cast<std::size_t>(n), 0);
    std::vector<int> single_fanout(static_cast<std::size_t>(n), -1);
    for (int id = 0; id < n; ++id) {
      for (int f : nl_->gate(id).fanins) {
        ++fanout_count[static_cast<std::size_t>(f)];
        single_fanout[static_cast<std::size_t>(f)] = id;
      }
    }
    std::vector<char> is_output(static_cast<std::size_t>(n), 0);
    for (int o : nl_->outputs()) is_output[static_cast<std::size_t>(o)] = 1;
    for (int a = 0; a < n; ++a) {
      const std::size_t as = static_cast<std::size_t>(a);
      if (fanout_count[as] != 1 || is_output[as]) continue;
      const int h = single_fanout[as];
      switch (nl_->gate(h).type) {
        case GateType::kBuf:
          uf.unite(2 * a + 0, 2 * h + 0);
          uf.unite(2 * a + 1, 2 * h + 1);
          break;
        case GateType::kNot:
          uf.unite(2 * a + 0, 2 * h + 1);
          uf.unite(2 * a + 1, 2 * h + 0);
          break;
        case GateType::kAnd:
          uf.unite(2 * a + 0, 2 * h + 0);
          break;
        case GateType::kNand:
          uf.unite(2 * a + 0, 2 * h + 1);
          break;
        case GateType::kOr:
          uf.unite(2 * a + 1, 2 * h + 1);
          break;
        case GateType::kNor:
          uf.unite(2 * a + 1, 2 * h + 0);
          break;
        default:
          break;
      }
    }
  }

  // Map each analyzable fault to a class literal: stems directly,
  // controlling-value and unary pin faults via the gate-local collapse.
  auto class_lit = [&](const FaultSpec& f) -> int {
    if (f.kind == FaultSpec::Kind::kStuckGate)
      return uf.find(2 * f.gate + (f.value ? 1 : 0));
    if (f.kind != FaultSpec::Kind::kStuckPin) return -1;
    const Gate& g = nl_->gate(f.gate);
    if (f.gate2_or_pin < 0 ||
        static_cast<std::size_t>(f.gate2_or_pin) >= g.fanins.size())
      return -1;
    switch (g.type) {
      case GateType::kBuf:
        return uf.find(2 * f.gate + (f.value ? 1 : 0));
      case GateType::kNot:
        return uf.find(2 * f.gate + (f.value ? 0 : 1));
      case GateType::kAnd:
        return f.value ? -1 : uf.find(2 * f.gate + 0);
      case GateType::kNand:
        return f.value ? -1 : uf.find(2 * f.gate + 1);
      case GateType::kOr:
        return f.value ? uf.find(2 * f.gate + 1) : -1;
      case GateType::kNor:
        return f.value ? uf.find(2 * f.gate + 0) : -1;
      default:
        return -1;
    }
  };

  std::vector<std::size_t> first_of(static_cast<std::size_t>(2 * n),
                                    faults.size());
  std::size_t classes = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const int root = class_lit(faults[i]);
    if (root < 0) {
      ++classes;  // uncollapsible fault: its own class
      continue;
    }
    std::size_t& first = first_of[static_cast<std::size_t>(root)];
    if (first == faults.size()) {
      first = i;
      ++classes;
    } else {
      result.equiv_rep[i] = first;
      ++result.equiv_merged;
    }
  }
  result.equiv_classes = classes;

  static const obs::Counter c_checked = obs::counter("analysis.faults_checked");
  static const obs::Counter c_unexc = obs::counter("analysis.unexcitable");
  static const obs::Counter c_unprop =
      obs::counter("analysis.unpropagatable");
  static const obs::Counter c_merged = obs::counter("analysis.equiv_merged");
  c_checked.add(faults.size());
  c_unexc.add(result.unexcitable);
  c_unprop.add(result.unpropagatable);
  c_merged.add(result.equiv_merged);
  return result;
}

void register_analysis_counters() {
  static const char* const kNames[] = {
      "analysis.runs",           "analysis.constants",
      "analysis.learned_implications", "analysis.faults_checked",
      "analysis.unexcitable",    "analysis.unpropagatable",
      "analysis.equiv_merged",   "analysis.pruned",
      "analysis.static_consults", "analysis.static_undetectable",
  };
  for (const char* name : kNames) obs::counter(name);
}

}  // namespace fstg::analysis
