#include "harness/experiment.h"

#include <memory>

#include "analysis/static_faults.h"
#include "base/error.h"
#include "base/log.h"
#include "base/obs/metrics.h"
#include "base/obs/telemetry.h"
#include "base/parallel/thread_pool.h"
#include "base/robust/budget.h"
#include "base/store/store.h"
#include "base/timer.h"
#include "harness/cache.h"
#include "lint/fsm_lint.h"
#include "netlist/export.h"
#include "netlist/reach.h"

namespace fstg {

namespace {

/// The pre-flight gate (see LintPreflightOptions). Throws ParseError with
/// the first error finding; warnings and budget exhaustion pass through.
void lint_preflight(const Kiss2Fsm& fsm, const LintPreflightOptions& options) {
  if (!options.enabled) return;
  obs::StageScope scope("lint.preflight", fsm.name);
  lint::LintReport report;
  report.source = fsm.name;
  {
    robust::RunGuard guard(options.budget, "lint.preflight");
    lint::lint_fsm_symbolic(fsm, guard, report);
  }
  lint::record_lint_metrics(report);
  if (!report.has_errors()) return;
  for (const lint::Finding& f : report.findings()) {
    if (f.severity == lint::Severity::kError)
      throw ParseError("lint: [" + f.rule + "] " + f.message +
                           (report.errors() > 1
                                ? " (+" + std::to_string(report.errors() - 1) +
                                      " more error finding(s))"
                                : ""),
                       f.loc.line);
  }
}

}  // namespace

CircuitExperiment run_circuit(const std::string& name,
                              const ExperimentOptions& options) {
  CircuitExperiment exp = run_fsm(load_benchmark(name), options);
  exp.spec = benchmark_spec(name);
  require(exp.synth.circuit.num_sv == exp.spec.sv,
          "circuit " + name + ": synthesized sv disagrees with Table 4");
  return exp;
}

CircuitExperiment run_fsm(const Kiss2Fsm& fsm,
                          const ExperimentOptions& options) {
  CircuitExperiment exp;
  exp.fsm = fsm;

  lint_preflight(fsm, options.lint);

  store::Store* cache = store::resolve(options.cache);
  const std::uint64_t skey =
      cache ? harness::synth_key(fsm, options.synth) : 0;
  if (!harness::load_synth(cache, skey, &exp.synth, &exp.table,
                           &exp.synth_seconds)) {
    {
      obs::StageScope scope("synth", fsm.name);
      Timer timer;
      exp.synth = synthesize_scan_circuit(exp.fsm, options.synth);
      exp.synth_seconds = timer.seconds();
    }

    {
      obs::StageScope scope("verify.readback", fsm.name);
      std::string message;
      const bool matches =
          circuit_matches_fsm(exp.synth.circuit, exp.fsm, exp.synth.encoding,
                              &message);
      require(matches,
              "synthesis self-check failed for " + fsm.name + ": " + message);
      exp.table =
          read_back_table(exp.synth.circuit, &exp.fsm, &exp.synth.encoding);
    }
    harness::save_synth(cache, skey, exp.synth, exp.table, exp.synth_seconds);
  }

  log_info("circuit " + fsm.name + ": " +
           std::to_string(exp.synth.circuit.comb.num_gates()) + " gates, " +
           std::to_string(exp.table.num_states()) + " states");

  const std::uint64_t gkey =
      cache ? harness::gen_key(exp.table, options.gen) : 0;
  if (!harness::load_gen(cache, gkey, &exp.gen)) {
    obs::StageScope scope("generate", fsm.name);
    exp.gen = generate_functional_tests(exp.table, options.gen);
    harness::save_gen(cache, gkey, exp.gen);
  }
  return exp;
}

GateLevelResult run_gate_level(const CircuitExperiment& exp,
                               bool classify_redundancy) {
  GateLevelOptions options;
  options.classify_redundancy = classify_redundancy;
  return run_gate_level(exp, options);
}

namespace {

/// Convert an exception escaping one pipeline stage into a typed Status
/// whose context chain names the stage. ParseError keeps its category,
/// BudgetError maps to kBudgetExhausted, everything else is an internal
/// invariant violation.
robust::Status stage_status(const char* stage, const std::string& circuit) {
  using robust::Code;
  using robust::Status;
  const std::string ctx = std::string("stage ") + stage;
  try {
    throw;  // rethrow the in-flight exception to dispatch on its type
  } catch (const ParseError& e) {
    return Status::error(Code::kParseError, e.what())
        .with_context(ctx)
        .with_context("circuit " + circuit);
  } catch (const BudgetError& e) {
    return Status::error(Code::kBudgetExhausted, e.what())
        .with_context(ctx)
        .with_context("circuit " + circuit);
  } catch (const std::exception& e) {
    return Status::error(Code::kInternal, e.what())
        .with_context(ctx)
        .with_context("circuit " + circuit);
  }
}

}  // namespace

GateLevelResult run_gate_level(const CircuitExperiment& exp,
                               const GateLevelOptions& options) {
  const bool classify_redundancy = options.classify_redundancy;
  GateLevelResult result;
  const ScanCircuit& circuit = exp.synth.circuit;
  store::Store* cache = store::resolve(options.cache);
  const std::string blif = cache ? to_blif(circuit, exp.fsm.name) : "";
  const std::uint64_t fkey =
      cache ? harness::faults_key(blif, options.max_bridging_faults) : 0;
  if (!harness::load_faults(cache, fkey, circuit.comb.num_gates(),
                            &result.sa_faults, &result.br_faults,
                            &result.br_enumerated)) {
    result.sa_faults = enumerate_stuck_at(circuit.comb);
    result.br_faults = enumerate_bridging(circuit.comb);
    result.br_enumerated = result.br_faults.size();
    if (options.max_bridging_faults > 0 &&
        result.br_faults.size() > options.max_bridging_faults) {
      // Deterministic stride sampling over AND/OR *pairs* (adjacent in the
      // enumeration) so both polarities of a kept bridge survive.
      const std::size_t pairs = result.br_faults.size() / 2;
      const std::size_t want_pairs = options.max_bridging_faults / 2;
      const std::size_t stride = (pairs + want_pairs - 1) / want_pairs;
      std::vector<FaultSpec> sampled;
      sampled.reserve(2 * (pairs / stride + 1));
      for (std::size_t p = 0; p < pairs; p += stride) {
        sampled.push_back(result.br_faults[2 * p]);
        sampled.push_back(result.br_faults[2 * p + 1]);
      }
      log_info("circuit " + exp.fsm.name + ": sampled " +
               std::to_string(sampled.size()) + " of " +
               std::to_string(result.br_faults.size()) + " bridging faults");
      result.br_faults = std::move(sampled);
    }
    harness::save_faults(cache, fkey, result.sa_faults, result.br_faults,
                         result.br_enumerated);
  }

  // One reachability matrix serves every fault set over this netlist:
  // stuck-at, bridging, and the redundancy re-checks.
  std::vector<BitVec> reach;
  const std::uint64_t rkey = cache ? harness::reach_key(blif) : 0;
  if (!harness::load_reach(cache, rkey,
                           static_cast<std::size_t>(circuit.comb.num_gates()),
                           &reach)) {
    reach = forward_reachability(circuit.comb);
    harness::save_reach(cache, rkey, reach);
  }
  // Optional static pre-flight: prove faults untestable without a single
  // simulated pattern and drop them from the simulated universe. The
  // analyzer is kept alive so the redundancy classifier below can consult
  // the same verdicts for the remaining misses.
  std::unique_ptr<analysis::StaticAnalyzer> statics;
  if (options.static_prune) {
    obs::StageScope scope("analysis.static_prune", exp.fsm.name);
    static const obs::Counter c_pruned = obs::counter("analysis.pruned");
    statics = std::make_unique<analysis::StaticAnalyzer>(
        circuit.comb, analysis::AnalyzerOptions{}, &reach);
    const analysis::FaultAnalysis sa_static =
        statics->analyze(result.sa_faults);
    const analysis::FaultAnalysis br_static =
        statics->analyze(result.br_faults);
    result.static_pruned = true;
    result.static_unexcitable =
        sa_static.unexcitable + br_static.unexcitable;
    result.static_unpropagatable =
        sa_static.unpropagatable + br_static.unpropagatable;
    result.static_equiv_classes = sa_static.equiv_classes;
    result.static_equiv_merged = sa_static.equiv_merged;
    const auto prune = [](std::vector<FaultSpec>& faults,
                          const analysis::FaultAnalysis& a) {
      std::size_t kept = 0;
      for (std::size_t f = 0; f < faults.size(); ++f)
        if (a.verdict[f] == analysis::FaultVerdict::kUnknown)
          faults[kept++] = faults[f];
      const std::size_t pruned = faults.size() - kept;
      faults.resize(kept);
      return pruned;
    };
    result.sa_pruned = prune(result.sa_faults, sa_static);
    result.br_pruned = prune(result.br_faults, br_static);
    c_pruned.add(result.sa_pruned + result.br_pruned);
    if (result.sa_pruned + result.br_pruned > 0)
      log_info("circuit " + exp.fsm.name + ": static analysis pruned " +
               std::to_string(result.sa_pruned) + " stuck-at + " +
               std::to_string(result.br_pruned) + " bridging faults");
  }

  FaultSimOptions sim_options;
  sim_options.threads = options.threads;
  sim_options.reachability = &reach;

  {
    obs::StageScope scope("gate_level.stuck_at",
                   std::to_string(result.sa_faults.size()) + " faults");
    result.sa = select_effective_tests(circuit, exp.gen.tests,
                                       result.sa_faults, sim_options);
  }
  {
    obs::StageScope scope("gate_level.bridging",
                   std::to_string(result.br_faults.size()) + " faults");
    result.br = select_effective_tests(circuit, exp.gen.tests,
                                       result.br_faults, sim_options);
  }

  if (classify_redundancy) {
    // Reuse the compaction pass's simulation: only the misses get the
    // exhaustive re-check.
    obs::StageScope scope("redundancy.classify", exp.fsm.name);
    result.sa_redundancy =
        classify_faults_from(circuit, result.sa_faults,
                             result.sa.sim.detected_by, &reach, statics.get());
    result.br_redundancy =
        classify_faults_from(circuit, result.br_faults,
                             result.br.sim.detected_by, &reach, statics.get());
    // Statically pruned faults are proven-undetectable: fold them back into
    // the totals so headline counts match an unpruned run.
    result.sa_redundancy.undetectable += result.sa_pruned;
    result.br_redundancy.undetectable += result.br_pruned;
    result.redundancy_classified = true;
  }
  return result;
}

robust::Result<CircuitExperiment> try_run_circuit(
    const std::string& name, const ExperimentOptions& options) {
  Kiss2Fsm fsm;
  try {
    fsm = load_benchmark(name);
  } catch (...) {
    return stage_status("load", name);
  }
  robust::Result<CircuitExperiment> r = try_run_fsm(fsm, options);
  if (!r.is_ok()) return r;
  try {
    CircuitExperiment exp = r.take();
    exp.spec = benchmark_spec(name);
    require(exp.synth.circuit.num_sv == exp.spec.sv,
            "circuit " + name + ": synthesized sv disagrees with Table 4");
    return exp;
  } catch (...) {
    return stage_status("verify", name);
  }
}

robust::Result<CircuitExperiment> try_run_fsm(const Kiss2Fsm& fsm,
                                              const ExperimentOptions& options) {
  CircuitExperiment exp;
  exp.fsm = fsm;

  try {
    lint_preflight(fsm, options.lint);
  } catch (...) {
    return stage_status("lint", fsm.name);
  }

  store::Store* cache = store::resolve(options.cache);
  const std::uint64_t skey =
      cache ? harness::synth_key(fsm, options.synth) : 0;
  if (!harness::load_synth(cache, skey, &exp.synth, &exp.table,
                           &exp.synth_seconds)) {
    try {
      obs::StageScope scope("synth", fsm.name);
      Timer timer;
      exp.synth = synthesize_scan_circuit(exp.fsm, options.synth);
      exp.synth_seconds = timer.seconds();
    } catch (...) {
      return stage_status("synth", fsm.name);
    }

    try {
      obs::StageScope scope("verify.readback", fsm.name);
      std::string message;
      const bool matches = circuit_matches_fsm(exp.synth.circuit, exp.fsm,
                                               exp.synth.encoding, &message);
      if (!matches)
        return robust::Status::error(robust::Code::kInternal,
                                     "synthesis self-check failed: " + message)
            .with_context("stage verify")
            .with_context("circuit " + fsm.name);
      exp.table =
          read_back_table(exp.synth.circuit, &exp.fsm, &exp.synth.encoding);
    } catch (...) {
      return stage_status("verify", fsm.name);
    }
    harness::save_synth(cache, skey, exp.synth, exp.table, exp.synth_seconds);
  }

  obs::StageScope gen_scope("generate", fsm.name);
  const std::uint64_t gkey =
      cache ? harness::gen_key(exp.table, options.gen) : 0;
  if (!harness::load_gen(cache, gkey, &exp.gen)) {
    robust::Result<GeneratorResult> gen =
        try_generate_functional_tests(exp.table, options.gen);
    if (!gen.is_ok()) {
      robust::Status s = gen.status();
      return s.with_context("stage generate")
          .with_context("circuit " + fsm.name);
    }
    exp.gen = gen.take();
    harness::save_gen(cache, gkey, exp.gen);
  }
  if (exp.gen.degraded)
    log_warn("circuit " + fsm.name + ": generation degraded by budget (" +
             std::to_string(exp.gen.uio_aborted_states()) +
             " UIO searches aborted; scan-out fallback keeps coverage)");
  return exp;
}

robust::Result<GateLevelResult> try_run_gate_level(
    const CircuitExperiment& exp, const GateLevelOptions& options) {
  try {
    return run_gate_level(exp, options);
  } catch (...) {
    return stage_status("gate-level", exp.fsm.name);
  }
}

std::size_t SuiteResult::failures() const {
  std::size_t n = 0;
  for (const CircuitRun& run : runs) n += run.status.is_ok() ? 0 : 1;
  return n;
}

namespace {

/// One circuit's complete pipeline; never throws (the try_ boundary turns
/// every failure into a Status on the run record).
CircuitRun run_one_circuit(const std::string& name,
                           const SuiteOptions& options) {
  obs::StageScope scope("suite.circuit", name);
  CircuitRun run;
  run.name = name;
  store::Store* cache = store::resolve(options.experiment.cache);
  if (cache && !options.checkpoint.empty()) {
    // A record from an earlier (killed or budget-tripped) sweep means this
    // circuit's stages are already durable: the re-run below restarts from
    // the warm store instead of recomputing.
    static const obs::Counter c_resumed =
        obs::counter("harness.checkpoint.resumed");
    static const obs::Counter c_fresh =
        obs::counter("harness.checkpoint.fresh");
    if (harness::checkpoint_done(cache, options.checkpoint, name))
      c_resumed.inc();
    else
      c_fresh.inc();
  }
  robust::Result<CircuitExperiment> r =
      try_run_circuit(name, options.experiment);
  if (r.is_ok() && options.gate_level) {
    robust::Result<GateLevelResult> g =
        try_run_gate_level(r.value(), options.gate);
    if (g.is_ok()) {
      run.gate = g.take();
    } else {
      r = g.status();  // demote the circuit to failed at the gate stage
    }
  }
  if (r.is_ok()) {
    run.exp = r.take();
  } else {
    run.status = r.status();
    // The innermost "stage <name>" context frame names the failed stage.
    for (const std::string& frame : run.status.context()) {
      if (frame.rfind("stage ", 0) == 0) {
        run.failed_stage = frame.substr(6);
        break;
      }
    }
    log_warn("suite: circuit " + name + " failed (" + run.status.to_string() +
             "); continuing with the rest");
  }
  if (cache && !options.checkpoint.empty())
    harness::checkpoint_mark(cache, options.checkpoint, name,
                             run.status.is_ok()
                                 ? "ok"
                                 : "failed " + run.failed_stage);
  return run;
}

}  // namespace

namespace {

/// Suite-level outcome counters, bumped once after all runs complete.
void count_suite_outcomes(const SuiteResult& result) {
  static const obs::Counter c_ok = obs::counter("suite.circuits_ok");
  static const obs::Counter c_failed = obs::counter("suite.circuits_failed");
  const std::size_t failed = result.failures();
  c_ok.add(result.runs.size() - failed);
  c_failed.add(failed);
}

}  // namespace

SuiteResult run_circuit_suite(const std::vector<std::string>& names,
                              const SuiteOptions& options) {
  obs::StageScope suite_scope("suite",
                       std::to_string(names.size()) + " circuits");
  SuiteResult result;
  result.runs.resize(names.size());
  const int threads = parallel::resolve_threads(options.threads);
  if (threads <= 1 || names.size() < 2) {
    for (std::size_t i = 0; i < names.size(); ++i)
      result.runs[i] = run_one_circuit(names[i], options);
    count_suite_outcomes(result);
    return result;
  }

  // Circuit-level fan-out: each circuit lands in runs[i] by input index, so
  // the suite report is deterministic regardless of worker scheduling.
  // Budget injections are thread-local; snapshot the caller's armed set and
  // install it in every worker so FSTG_INJECT-style failures propagate.
  const robust::InjectionSnapshot injections = robust::injections_snapshot();
  parallel::parallel_for(
      names.size(), /*grain=*/1, threads,
      [&](int /*slot*/, std::size_t lo, std::size_t hi) {
        robust::install_injections(injections);
        for (std::size_t i = lo; i < hi; ++i)
          result.runs[i] = run_one_circuit(names[i], options);
      });
  count_suite_outcomes(result);
  return result;
}

}  // namespace fstg
