#include "harness/experiment.h"

#include "base/error.h"
#include "base/log.h"
#include "base/timer.h"

namespace fstg {

CircuitExperiment run_circuit(const std::string& name,
                              const ExperimentOptions& options) {
  CircuitExperiment exp = run_fsm(load_benchmark(name), options);
  exp.spec = benchmark_spec(name);
  require(exp.synth.circuit.num_sv == exp.spec.sv,
          "circuit " + name + ": synthesized sv disagrees with Table 4");
  return exp;
}

CircuitExperiment run_fsm(const Kiss2Fsm& fsm,
                          const ExperimentOptions& options) {
  CircuitExperiment exp;
  exp.fsm = fsm;

  Timer timer;
  exp.synth = synthesize_scan_circuit(exp.fsm, options.synth);
  exp.synth_seconds = timer.seconds();

  std::string message;
  const bool matches =
      circuit_matches_fsm(exp.synth.circuit, exp.fsm, exp.synth.encoding,
                          &message);
  require(matches, "synthesis self-check failed for " + fsm.name + ": " + message);
  exp.table = read_back_table(exp.synth.circuit, &exp.fsm, &exp.synth.encoding);

  log_info("circuit " + fsm.name + ": " +
           std::to_string(exp.synth.circuit.comb.num_gates()) + " gates, " +
           std::to_string(exp.table.num_states()) + " states");

  exp.gen = generate_functional_tests(exp.table, options.gen);
  return exp;
}

GateLevelResult run_gate_level(const CircuitExperiment& exp,
                               bool classify_redundancy) {
  GateLevelOptions options;
  options.classify_redundancy = classify_redundancy;
  return run_gate_level(exp, options);
}

GateLevelResult run_gate_level(const CircuitExperiment& exp,
                               const GateLevelOptions& options) {
  const bool classify_redundancy = options.classify_redundancy;
  GateLevelResult result;
  const ScanCircuit& circuit = exp.synth.circuit;
  result.sa_faults = enumerate_stuck_at(circuit.comb);
  result.br_faults = enumerate_bridging(circuit.comb);
  result.br_enumerated = result.br_faults.size();
  if (options.max_bridging_faults > 0 &&
      result.br_faults.size() > options.max_bridging_faults) {
    // Deterministic stride sampling over AND/OR *pairs* (adjacent in the
    // enumeration) so both polarities of a kept bridge survive.
    const std::size_t pairs = result.br_faults.size() / 2;
    const std::size_t want_pairs = options.max_bridging_faults / 2;
    const std::size_t stride = (pairs + want_pairs - 1) / want_pairs;
    std::vector<FaultSpec> sampled;
    sampled.reserve(2 * (pairs / stride + 1));
    for (std::size_t p = 0; p < pairs; p += stride) {
      sampled.push_back(result.br_faults[2 * p]);
      sampled.push_back(result.br_faults[2 * p + 1]);
    }
    log_info("circuit " + exp.fsm.name + ": sampled " +
             std::to_string(sampled.size()) + " of " +
             std::to_string(result.br_faults.size()) + " bridging faults");
    result.br_faults = std::move(sampled);
  }

  result.sa = select_effective_tests(circuit, exp.gen.tests, result.sa_faults);
  result.br = select_effective_tests(circuit, exp.gen.tests, result.br_faults);

  if (classify_redundancy) {
    // Reuse the compaction pass's simulation: only the misses get the
    // exhaustive re-check.
    result.sa_redundancy = classify_faults_from(circuit, result.sa_faults,
                                                result.sa.sim.detected_by);
    result.br_redundancy = classify_faults_from(circuit, result.br_faults,
                                                result.br.sim.detected_by);
    result.redundancy_classified = true;
  }
  return result;
}

}  // namespace fstg
