#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atpg/generator.h"
#include "base/bitvec.h"
#include "base/store/store.h"
#include "fsm/state_table.h"
#include "kiss/kiss2.h"
#include "netlist/synth.h"
#include "sim/logic_sim.h"

namespace fstg::harness {

/// --- Pipeline artifact cache ---------------------------------------------
///
/// Typed load/save wrappers over the content-addressed store
/// (base/store/store.h) for the pipeline's hot derivations: synthesized
/// netlists (+ the read-back state table), generation results (tests + UIO
/// tables), enumerated fault lists, and forward-reachability matrices.
///
/// Keys hash the *canonical text* of the derivation's input (write_kiss2
/// for FSM stages, to_blif for netlist stages) plus every option that
/// changes the artifact plus the payload schema version — so a warm hit is
/// byte-equivalent to recomputing, and any input, option, or format change
/// is automatically a miss.
///
/// Every loader returns false on a miss OR any damage (the deserializers
/// re-validate structure; damage also counts store.corrupt.* and unlinks
/// the blob). Savers never throw; a full or read-only cache degrades to
/// recompute. Budget-degraded generation results are NOT cached: a blob
/// written under a tight budget must never short-circuit a later unlimited
/// run.

/// Payload type ids (part of every blob header).
inline constexpr std::uint32_t kTypeSynth = 1;
inline constexpr std::uint32_t kTypeGen = 2;
inline constexpr std::uint32_t kTypeFaults = 3;
inline constexpr std::uint32_t kTypeReach = 4;

/// Payload schema versions: bump when the serialized layout of the
/// corresponding artifact changes; old blobs then read as misses
/// (store.corrupt.schema) and are repaired by the next save.
inline constexpr std::uint32_t kSynthSchema = 1;
inline constexpr std::uint32_t kGenSchema = 1;
inline constexpr std::uint32_t kFaultsSchema = 1;
inline constexpr std::uint32_t kReachSchema = 1;

/// Key for the synthesis stage: canonical KISS2 text + synthesis options.
std::uint64_t synth_key(const Kiss2Fsm& fsm, const SynthesisOptions& options);

/// Key for the generation stage: the *table's* serialized content (not the
/// FSM text — generation depends only on the completed table) + generator
/// options. The budget envelope is deliberately excluded: only complete
/// (non-degraded) results are cached, and those are budget-independent.
std::uint64_t gen_key(const StateTable& table, const GeneratorOptions& options);

/// Key for fault enumeration over one netlist: canonical BLIF + the
/// sampling cap.
std::uint64_t faults_key(const std::string& blif_text,
                         std::size_t max_bridging_faults);

/// Key for the forward-reachability matrix of one netlist.
std::uint64_t reach_key(const std::string& blif_text);

/// Synthesis artifact: the result plus the read-back table and the
/// measured synthesis time (reported by warm runs as the cost of the run
/// that produced the blob).
bool load_synth(store::Store* s, std::uint64_t key, SynthesisResult* synth,
                StateTable* table, double* synth_seconds);
void save_synth(store::Store* s, std::uint64_t key,
                const SynthesisResult& synth, const StateTable& table,
                double synth_seconds);

/// Generation artifact (tests, UIO set, per-transition map, timings).
/// save_gen refuses degraded results.
bool load_gen(store::Store* s, std::uint64_t key, GeneratorResult* gen);
void save_gen(store::Store* s, std::uint64_t key, const GeneratorResult& gen);

/// Enumerated (and possibly sampled) fault lists for one netlist.
bool load_faults(store::Store* s, std::uint64_t key, int num_gates,
                 std::vector<FaultSpec>* sa, std::vector<FaultSpec>* br,
                 std::size_t* br_enumerated);
void save_faults(store::Store* s, std::uint64_t key,
                 const std::vector<FaultSpec>& sa,
                 const std::vector<FaultSpec>& br, std::size_t br_enumerated);

/// Forward-reachability matrix for one netlist.
bool load_reach(store::Store* s, std::uint64_t key, std::size_t num_gates,
                std::vector<BitVec>* reach);
void save_reach(store::Store* s, std::uint64_t key,
                const std::vector<BitVec>& reach);

/// --- Campaign checkpoints ------------------------------------------------
///
/// Durable per-circuit completion records under
/// <cache>/checkpoints/<campaign>/. A resumed campaign re-runs every
/// circuit, but completed circuits' stages all hit the warm store, so the
/// sweep effectively restarts from the last durable stage; the records
/// make that progress observable (counters harness.checkpoint.*, `fstg
/// cache stats`) and testable. Records are written atomically; a torn
/// record reads as "not done".

/// True iff `circuit` has a completion record for `campaign`.
bool checkpoint_done(store::Store* s, const std::string& campaign,
                     const std::string& circuit);

/// Write `circuit`'s completion record ("ok" or "failed <stage>").
/// Best-effort: failures degrade to "no record" and bump a counter.
void checkpoint_mark(store::Store* s, const std::string& campaign,
                     const std::string& circuit, const std::string& outcome);

}  // namespace fstg::harness
