#pragma once

#include <string>

#include "atpg/generator.h"
#include "base/robust/budget.h"
#include "base/robust/status.h"
#include "fault/bridging.h"
#include "fault/compaction.h"
#include "fault/fault.h"
#include "fault/redundancy.h"
#include "kiss/benchmarks.h"
#include "netlist/synth.h"
#include "netlist/verify.h"

namespace fstg::store {
class Store;
}  // namespace fstg::store

namespace fstg {

/// Budgeted pre-flight static analysis, run before synthesis. Only the
/// cheap symbolic FSM analyses run here — the table-based and netlist
/// ones are `fstg lint`'s job. Error-severity findings abort the pipeline
/// with a parse-category failure ("stage lint" in the context chain, exit
/// code 2 at the CLI); warnings only bump `lint.findings.<rule>` counters.
/// Budget exhaustion skips the remaining checks and lets the pipeline
/// continue: a slow lint must never cost a circuit its run.
struct LintPreflightOptions {
  bool enabled = true;
  robust::Budget budget;
};

/// Options shared by every experiment (paper defaults).
struct ExperimentOptions {
  SynthesisOptions synth;
  GeneratorOptions gen;  ///< uio_max_length = 0 (=> N_SV), transfer <= 1
  LintPreflightOptions lint;
  /// Artifact cache for the synth and generate stages (harness/cache.h).
  /// nullptr falls back to the process-global store (the --cache-dir flag);
  /// with neither, every stage recomputes. A hit restores byte-equivalent
  /// results; corruption degrades to recompute, never to an error.
  store::Store* cache = nullptr;
};

/// Everything the functional part of the paper needs for one circuit:
/// KISS2 machine -> synthesized full-scan implementation -> completed
/// state table (read back from the netlist, so the functional model and
/// the implementation agree by construction) -> functional tests.
struct CircuitExperiment {
  BenchmarkSpec spec;
  Kiss2Fsm fsm;
  SynthesisResult synth;
  StateTable table;
  GeneratorResult gen;
  double synth_seconds = 0.0;
};

/// Run the functional pipeline on one named benchmark circuit.
CircuitExperiment run_circuit(const std::string& name,
                              const ExperimentOptions& options = {});

/// Same pipeline on a caller-provided machine (examples, tests).
CircuitExperiment run_fsm(const Kiss2Fsm& fsm,
                          const ExperimentOptions& options = {});

/// Gate-level evaluation of the functional tests (Tables 3, 6, 7):
/// stuck-at and bridging fault lists, longest-first effective-test
/// selection, and (optionally) exhaustive redundancy classification of the
/// leftover faults.
struct GateLevelOptions {
  bool classify_redundancy = true;
  /// Worker threads for the fault-simulation engine (FaultSimOptions
  /// semantics: negative = process default, 0/1 = serial). Results are
  /// bit-identical for any value.
  int threads = -1;
  /// Our two-level implementations have many more qualifying bridging
  /// pairs than the paper's multi-level circuits (the candidate count is
  /// quadratic in multi-input gates). Lists larger than this cap are
  /// deterministically strided down to ~this many faults, keeping AND/OR
  /// pairs together; 0 = no cap. The full enumerated count is reported.
  std::size_t max_bridging_faults = 4096;
  /// Artifact cache for fault lists and reachability matrices (same
  /// resolution rule as ExperimentOptions::cache).
  store::Store* cache = nullptr;
  /// Run the fault-independent static implication engine before any
  /// simulation and drop faults it proves untestable from the simulated
  /// universe (they are re-added to the redundancy totals afterwards, so
  /// headline counts match an unpruned run). The same analyzer then backs
  /// the redundancy classifier, so statically-resolved misses skip the
  /// exhaustive scan.
  bool static_prune = false;
};

struct GateLevelResult {
  std::vector<FaultSpec> sa_faults;  ///< after static pruning, if any
  std::vector<FaultSpec> br_faults;  ///< after sampling + static pruning
  std::size_t br_enumerated = 0;     ///< size of the full bridging list
  CompactionResult sa;
  CompactionResult br;
  RedundancyResult sa_redundancy;
  RedundancyResult br_redundancy;
  bool redundancy_classified = false;
  /// Static pre-flight stats (meaningful when `static_pruned`). Pruned
  /// counts are faults removed from sa_faults/br_faults before simulation;
  /// equiv counts cover the pre-prune stuck-at list.
  bool static_pruned = false;
  std::size_t sa_pruned = 0;
  std::size_t br_pruned = 0;
  std::size_t static_unexcitable = 0;
  std::size_t static_unpropagatable = 0;
  std::size_t static_equiv_classes = 0;
  std::size_t static_equiv_merged = 0;
};

GateLevelResult run_gate_level(const CircuitExperiment& exp,
                               const GateLevelOptions& options = {});
GateLevelResult run_gate_level(const CircuitExperiment& exp,
                               bool classify_redundancy);

/// --- Structured-error boundary ------------------------------------------
///
/// The try_ variants never throw for input-level or resource-level
/// failures: each pipeline stage (load, synth, verify, generate,
/// gate-level) is run under a catch boundary that converts exceptions into
/// a typed Status whose context chain names the stage and circuit. The
/// suite runner uses them to record per-circuit failures and continue with
/// the remaining circuits instead of aborting the whole table.
robust::Result<CircuitExperiment> try_run_circuit(
    const std::string& name, const ExperimentOptions& options = {});
robust::Result<CircuitExperiment> try_run_fsm(
    const Kiss2Fsm& fsm, const ExperimentOptions& options = {});
robust::Result<GateLevelResult> try_run_gate_level(
    const CircuitExperiment& exp, const GateLevelOptions& options = {});

/// One circuit's outcome in a suite run. `exp` (and `gate`, when gate-level
/// evaluation was requested) are only meaningful when `status.is_ok()`.
struct CircuitRun {
  std::string name;
  robust::Status status;
  std::string failed_stage;  ///< "", "load", "synth", "verify", "generate", "gate-level"
  CircuitExperiment exp;
  GateLevelResult gate;
};

struct SuiteOptions {
  ExperimentOptions experiment;
  bool gate_level = false;  ///< also run stuck-at/bridging evaluation
  GateLevelOptions gate;
  /// Worker threads for circuit-level parallelism: each circuit's whole
  /// pipeline runs on one worker (negative = process default, 0/1 =
  /// serial). `runs` keeps the input order regardless of scheduling, and
  /// budget injections armed on the calling thread apply inside workers.
  int threads = -1;
  /// Campaign name for durable checkpoint/resume records (harness/cache.h).
  /// Empty disables checkpointing; requires a usable artifact cache. Each
  /// completed circuit writes an atomic completion record; a killed or
  /// budget-tripped sweep re-run under the same campaign restarts from the
  /// last durable stage (completed circuits' stages all hit the warm
  /// store), with resumed/fresh circuits counted under harness.checkpoint.*.
  std::string checkpoint;
};

struct SuiteResult {
  std::vector<CircuitRun> runs;

  std::size_t failures() const;
  std::size_t successes() const { return runs.size() - failures(); }
};

/// Run the pipeline over many circuits, recording per-stage failures and
/// continuing with the remaining circuits (a failed circuit never takes
/// the rest of the table down with it).
SuiteResult run_circuit_suite(const std::vector<std::string>& names,
                              const SuiteOptions& options = {});

}  // namespace fstg
