#include "harness/tables.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "atpg/cycles.h"
#include "base/error.h"
#include "base/string_util.h"
#include "base/table_printer.h"
#include "base/timer.h"

namespace fstg {

namespace {

// MSB-first rendering, matching KISS2 fields and the paper's notation.
std::string binary(std::uint32_t v, int bits) {
  std::string s(static_cast<std::size_t>(bits), '0');
  for (int b = 0; b < bits; ++b)
    if ((v >> b) & 1u) s[static_cast<std::size_t>(bits - 1 - b)] = '1';
  return s;
}

std::string pct(double v) { return strf("%.2f", v); }

}  // namespace

namespace {

/// Print the table; additionally write `<FSTG_CSV_DIR>/<name>.csv` when the
/// environment variable is set (machine-readable experiment records).
void finish_table(const TablePrinter& t, const char* name, std::ostream& os) {
  t.print(os);
  if (const char* dir = std::getenv("FSTG_CSV_DIR")) {
    std::ofstream f(std::string(dir) + "/" + name + ".csv");
    if (f.good()) t.print_csv(f);
  }
}

}  // namespace

/// --- Table 2 -------------------------------------------------------------

std::vector<Table2Row> compute_table2(const CircuitExperiment& exp) {
  std::vector<Table2Row> rows;
  const StateTable& table = exp.table;
  for (int s = 0; s < table.num_states(); ++s) {
    Table2Row row;
    row.state = table.state_names.empty()
                    ? std::to_string(s)
                    : table.state_names[static_cast<std::size_t>(s)];
    const UioSequence& u = exp.gen.uios.of(s);
    row.has_uio = u.exists;
    if (u.exists) {
      for (std::size_t i = 0; i < u.inputs.size(); ++i) {
        if (i) row.sequence += ' ';
        row.sequence += binary(u.inputs[i], table.input_bits());
      }
      row.final_state =
          table.state_names.empty()
              ? std::to_string(u.final_state)
              : table.state_names[static_cast<std::size_t>(u.final_state)];
    } else {
      row.sequence = "-";
      row.final_state = "-";
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_table2(const std::vector<Table2Row>& rows, std::ostream& os) {
  TablePrinter t({"state", "unique", "f.stat"});
  for (const auto& r : rows) t.add_row({r.state, r.sequence, r.final_state});
  finish_table(t, "table2", os);
}

/// --- Table 3 -------------------------------------------------------------

std::vector<Table3Row> compute_table3(const CircuitExperiment& exp,
                                      const GateLevelResult& gate) {
  std::vector<Table3Row> rows;
  const TestSet& ordered = gate.sa.ordered_tests;
  // Cumulative detections: fault f counted from its first detecting test on.
  std::vector<std::size_t> new_at(ordered.tests.size(), 0);
  for (int t : gate.sa.sim.detected_by)
    if (t >= 0) ++new_at[static_cast<std::size_t>(t)];
  std::size_t cumulative = 0;
  for (std::size_t i = 0; i < ordered.tests.size(); ++i) {
    cumulative += new_at[i];
    Table3Row row;
    row.test = ordered.tests[i].to_string(exp.table.input_bits());
    row.length = ordered.tests[i].length();
    row.detected_cumulative = cumulative;
    row.effective = gate.sa.sim.test_effective[i];
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_table3(const std::vector<Table3Row>& rows, std::size_t total_faults,
                  std::ostream& os) {
  TablePrinter t({"test", "length", "detected", "effective"});
  for (const auto& r : rows)
    t.add_row({r.test, TablePrinter::num(static_cast<long long>(r.length)),
               TablePrinter::num(static_cast<long long>(r.detected_cumulative)),
               r.effective ? "1" : "0"});
  finish_table(t, "table3", os);
  os << "total stuck-at faults: " << total_faults << "\n";
}

/// --- Table 4 -------------------------------------------------------------

Table4Row compute_table4_row(const CircuitExperiment& exp) {
  Table4Row row;
  row.circuit = exp.spec.name.empty() ? exp.fsm.name : exp.spec.name;
  row.pi = exp.table.input_bits();
  row.states = exp.table.num_states();
  row.unique = exp.gen.uios.count();
  row.sv = exp.synth.circuit.num_sv;
  row.mlen = exp.gen.uios.max_length();
  row.seconds = exp.gen.uio_seconds;
  return row;
}

void print_table4(const std::vector<Table4Row>& rows, std::ostream& os) {
  TablePrinter t({"circuit", "pi", "states", "unique", "sv", "m.len", "time"});
  for (const auto& r : rows)
    t.add_row({r.circuit, TablePrinter::num(static_cast<long long>(r.pi)),
               TablePrinter::num(static_cast<long long>(r.states)),
               TablePrinter::num(static_cast<long long>(r.unique)),
               TablePrinter::num(static_cast<long long>(r.sv)),
               TablePrinter::num(static_cast<long long>(r.mlen)),
               strf("%.2f", r.seconds)});
  finish_table(t, "table4", os);
}

/// --- Table 5 -------------------------------------------------------------

Table5Row compute_table5_row(const CircuitExperiment& exp) {
  Table5Row row;
  row.circuit = exp.spec.name.empty() ? exp.fsm.name : exp.spec.name;
  row.trans = static_cast<long long>(exp.table.num_transitions());
  row.tests = static_cast<long long>(exp.gen.tests.size());
  row.len = static_cast<long long>(exp.gen.tests.total_length());
  row.onelen_percent = 100.0 *
                       static_cast<double>(exp.gen.transitions_in_length_one) /
                       static_cast<double>(exp.table.num_transitions());
  row.seconds = exp.gen.generation_seconds;
  return row;
}

void print_table5(const std::vector<Table5Row>& rows, std::ostream& os) {
  TablePrinter t({"circuit", "trans", "tests", "len", "1len", "time"});
  double onelen_sum = 0;
  for (const auto& r : rows) {
    t.add_row({r.circuit, TablePrinter::num(r.trans),
               TablePrinter::num(r.tests), TablePrinter::num(r.len),
               pct(r.onelen_percent), strf("%.2f", r.seconds)});
    onelen_sum += r.onelen_percent;
  }
  t.add_row({"average", "", "", "",
             rows.empty() ? "-" : pct(onelen_sum / static_cast<double>(rows.size())),
             ""});
  finish_table(t, "table5", os);
}

/// --- Table 6 -------------------------------------------------------------

Table6Row compute_table6_row(const CircuitExperiment& exp,
                             const GateLevelResult& gate) {
  Table6Row row;
  row.circuit = exp.spec.name.empty() ? exp.fsm.name : exp.spec.name;
  row.sa_tests = static_cast<long long>(gate.sa.effective_tests.size());
  row.sa_len = static_cast<long long>(gate.sa.effective_tests.total_length());
  row.sa_total = static_cast<long long>(gate.sa.sim.total_faults);
  row.sa_detected = static_cast<long long>(gate.sa.sim.detected_faults);
  row.sa_coverage = gate.sa.sim.coverage_percent();
  row.br_tests = static_cast<long long>(gate.br.effective_tests.size());
  row.br_len = static_cast<long long>(gate.br.effective_tests.total_length());
  row.br_total = static_cast<long long>(gate.br.sim.total_faults);
  row.br_detected = static_cast<long long>(gate.br.sim.detected_faults);
  row.br_coverage = gate.br.sim.coverage_percent();
  if (gate.redundancy_classified) {
    row.sa_complete = gate.sa_redundancy.missed_detectable == 0;
    row.br_complete = gate.br_redundancy.missed_detectable == 0;
  }
  return row;
}

void print_table6(const std::vector<Table6Row>& rows, std::ostream& os) {
  TablePrinter t({"circuit", "sa.tsts", "sa.len", "sa.tot", "sa.det", "sa.fc",
                  "sa.cmpl", "br.tsts", "br.len", "br.tot", "br.det", "br.fc",
                  "br.cmpl"});
  for (const auto& r : rows)
    t.add_row({r.circuit, TablePrinter::num(r.sa_tests),
               TablePrinter::num(r.sa_len), TablePrinter::num(r.sa_total),
               TablePrinter::num(r.sa_detected), pct(r.sa_coverage),
               r.sa_complete ? "yes" : "NO", TablePrinter::num(r.br_tests),
               TablePrinter::num(r.br_len), TablePrinter::num(r.br_total),
               TablePrinter::num(r.br_detected), pct(r.br_coverage),
               r.br_complete ? "yes" : "NO"});
  finish_table(t, "table6", os);
}

/// --- Table 7 -------------------------------------------------------------

Table7Row compute_table7_row(const CircuitExperiment& exp,
                             const GateLevelResult& gate) {
  Table7Row row;
  row.circuit = exp.spec.name.empty() ? exp.fsm.name : exp.spec.name;
  const int sv = exp.synth.circuit.num_sv;
  row.trans_cycles = static_cast<long long>(
      per_transition_cycles(sv, exp.table.num_transitions()));
  row.funct_cycles =
      static_cast<long long>(test_application_cycles(sv, exp.gen.tests));
  row.sa_cycles = static_cast<long long>(
      test_application_cycles(sv, gate.sa.effective_tests));
  row.br_cycles = static_cast<long long>(
      test_application_cycles(sv, gate.br.effective_tests));
  const double base = static_cast<double>(row.trans_cycles);
  row.funct_percent = 100.0 * static_cast<double>(row.funct_cycles) / base;
  row.sa_percent = 100.0 * static_cast<double>(row.sa_cycles) / base;
  row.br_percent = 100.0 * static_cast<double>(row.br_cycles) / base;
  return row;
}

void print_table7(const std::vector<Table7Row>& rows, std::ostream& os) {
  TablePrinter t({"circuit", "trans", "funct.cyc", "funct.%", "sa.cyc", "sa.%",
                  "bridg.cyc", "bridg.%"});
  double f = 0, s = 0, b = 0;
  for (const auto& r : rows) {
    t.add_row({r.circuit, TablePrinter::num(r.trans_cycles),
               TablePrinter::num(r.funct_cycles), pct(r.funct_percent),
               TablePrinter::num(r.sa_cycles), pct(r.sa_percent),
               TablePrinter::num(r.br_cycles), pct(r.br_percent)});
    f += r.funct_percent;
    s += r.sa_percent;
    b += r.br_percent;
  }
  if (!rows.empty()) {
    const double n = static_cast<double>(rows.size());
    t.add_row({"average", "", "", pct(f / n), "", pct(s / n), "", pct(b / n)});
  }
  finish_table(t, "table7", os);
}

/// --- Table 8 -------------------------------------------------------------

Table8Row compute_table8_row(const CircuitExperiment& exp_no_transfer) {
  const CircuitExperiment& exp = exp_no_transfer;
  Table8Row row;
  row.circuit = exp.spec.name.empty() ? exp.fsm.name : exp.spec.name;
  row.trans = static_cast<long long>(exp.table.num_transitions());
  row.tests = static_cast<long long>(exp.gen.tests.size());
  row.len = static_cast<long long>(exp.gen.tests.total_length());
  row.onelen_percent = 100.0 *
                       static_cast<double>(exp.gen.transitions_in_length_one) /
                       static_cast<double>(exp.table.num_transitions());
  const int sv = exp.synth.circuit.num_sv;
  row.cycles =
      static_cast<long long>(test_application_cycles(sv, exp.gen.tests));
  row.percent = 100.0 * static_cast<double>(row.cycles) /
                static_cast<double>(
                    per_transition_cycles(sv, exp.table.num_transitions()));
  return row;
}

void print_table8(const std::vector<Table8Row>& rows, std::ostream& os) {
  TablePrinter t({"circuit", "trans", "tests", "len", "1len", "cycles", "%"});
  for (const auto& r : rows)
    t.add_row({r.circuit, TablePrinter::num(r.trans),
               TablePrinter::num(r.tests), TablePrinter::num(r.len),
               pct(r.onelen_percent), TablePrinter::num(r.cycles),
               pct(r.percent)});
  finish_table(t, "table8", os);
}

/// --- Table 9 -------------------------------------------------------------

std::vector<Table9Row> compute_table9(const std::string& circuit,
                                      const ExperimentOptions& options) {
  // Build the machine once; re-derive UIOs and regenerate tests per bound.
  ExperimentOptions base = options;
  base.gen.uio_max_length = 1;
  CircuitExperiment exp = run_circuit(circuit, base);
  const StateTable& table = exp.table;
  const int sv = exp.synth.circuit.num_sv;
  const std::size_t baseline = per_transition_cycles(sv, table.num_transitions());

  std::vector<Table9Row> rows;
  int prev_unique = -1;
  for (int bound = 1; bound <= 2 * table.state_bits() + 4; ++bound) {
    UioOptions uio_options;
    uio_options.max_length = bound;
    uio_options.eval_budget = options.gen.uio_eval_budget;
    UioSet uios = derive_uio_sequences(table, uio_options);
    const int unique = uios.count();
    const int mlen = bound;  // the paper indexes rows by the bound

    GeneratorOptions gen_options = options.gen;
    gen_options.uio_max_length = bound;
    GeneratorResult gen =
        generate_functional_tests(table, gen_options, std::move(uios));

    Table9Row row;
    row.unique = unique;
    row.mlen = mlen;
    row.tests = static_cast<long long>(gen.tests.size());
    row.len = static_cast<long long>(gen.tests.total_length());
    row.onelen_percent = 100.0 *
                         static_cast<double>(gen.transitions_in_length_one) /
                         static_cast<double>(table.num_transitions());
    row.cycles =
        static_cast<long long>(test_application_cycles(sv, gen.tests));
    row.percent = 100.0 * static_cast<double>(row.cycles) /
                  static_cast<double>(baseline);
    rows.push_back(row);

    // The paper raises the bound "until a further increase ... does not
    // increase the number of states for which we can find" UIOs.
    if (unique == prev_unique) break;
    prev_unique = unique;
  }
  return rows;
}

void print_table9(const std::string& circuit,
                  const std::vector<Table9Row>& rows, std::ostream& os) {
  os << "(" << circuit << ")\n";
  TablePrinter t({"unique", "m.len", "tests", "len", "1len", "cycles", "%"});
  for (const auto& r : rows)
    t.add_row({TablePrinter::num(static_cast<long long>(r.unique)),
               TablePrinter::num(static_cast<long long>(r.mlen)),
               TablePrinter::num(r.tests), TablePrinter::num(r.len),
               pct(r.onelen_percent), TablePrinter::num(r.cycles),
               pct(r.percent)});
  finish_table(t, "table9", os);
}

}  // namespace fstg
