#include "harness/report.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "base/table_printer.h"

namespace fstg {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Normalize a watch spec: bench column names carry a "_ms" suffix the
/// ledger stage names do not.
std::string normalize_watch(const std::string& spec) {
  if (spec.size() > 3 && spec.ends_with("_ms"))
    return spec.substr(0, spec.size() - 3);
  return spec;
}

bool is_watched(const std::string& stage,
                const std::vector<std::string>& watch) {
  if (watch.empty()) return true;  // no specs = gate on everything
  for (const std::string& w : watch)
    if (w == stage) return true;
  return false;
}

}  // namespace

Report build_report(const std::vector<store::RunRecord>& records,
                    const ReportOptions& options, const std::string& ledger) {
  Report report;
  report.ledger = ledger;
  report.runs = records.size();
  report.threshold_pct = options.threshold_pct;
  for (const std::string& w : options.watch)
    report.watched.push_back(normalize_watch(w));

  std::map<std::string, std::vector<const store::RunRecord*>> by_circuit;
  for (const store::RunRecord& r : records)
    by_circuit[r.circuit].push_back(&r);

  for (auto& [circuit, runs] : by_circuit) {
    std::sort(runs.begin(), runs.end(),
              [](const store::RunRecord* a, const store::RunRecord* b) {
                return a->run < b->run;
              });
    const store::RunRecord* baseline = runs.front();
    if (options.baseline_run >= 0) {
      for (const store::RunRecord* r : runs)
        if (r->run == static_cast<std::uint64_t>(options.baseline_run))
          baseline = r;
    }
    const store::RunRecord* latest = runs.back();

    ReportCircuit rc;
    rc.circuit = circuit;
    rc.runs = runs.size();
    rc.baseline_run = baseline->run;
    rc.latest_run = latest->run;

    // Union of the two runs' stages: a stage that disappeared or appeared
    // still shows up, with the missing side reading 0.
    std::map<std::string, ReportStage> stages;
    for (const store::RunStage& s : baseline->stages) {
      ReportStage& rs = stages[s.stage];
      rs.stage = s.stage;
      rs.baseline_ms = s.ms;
    }
    for (const store::RunStage& s : latest->stages) {
      ReportStage& rs = stages[s.stage];
      rs.stage = s.stage;
      rs.latest_ms = s.ms;
    }
    for (auto& [name, rs] : stages) {
      if (rs.baseline_ms > 0.0)
        rs.delta_pct =
            (rs.latest_ms - rs.baseline_ms) / rs.baseline_ms * 100.0;
      rs.watched = is_watched(name, report.watched);
      // Comparing a run against itself can never regress — a one-run
      // ledger is a baseline, not a trend.
      rs.regressed =
          rs.watched && latest->run != baseline->run &&
          rs.latest_ms >
              rs.baseline_ms * (1.0 + options.threshold_pct / 100.0) +
                  options.slack_ms;
      if (rs.regressed) ++report.regressions;
      rc.stages.push_back(rs);
    }
    report.circuits.push_back(std::move(rc));
  }
  return report;
}

std::string report_to_json(const Report& report) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "{\n  \"schema\": \"fstg.report.v1\",\n"
     << "  \"ledger\": \"" << json_escape(report.ledger) << "\",\n"
     << "  \"runs\": " << report.runs << ",\n"
     << "  \"threshold_pct\": " << report.threshold_pct << ",\n"
     << "  \"watched\": [";
  for (std::size_t i = 0; i < report.watched.size(); ++i)
    os << (i ? ", " : "") << "\"" << json_escape(report.watched[i]) << "\"";
  os << "],\n  \"regressions\": " << report.regressions << ",\n"
     << "  \"regressed\": " << (report.regressed() ? "true" : "false")
     << ",\n  \"circuits\": [\n";
  for (std::size_t c = 0; c < report.circuits.size(); ++c) {
    const ReportCircuit& rc = report.circuits[c];
    os << "    {\"circuit\": \"" << json_escape(rc.circuit) << "\""
       << ", \"runs\": " << rc.runs
       << ", \"baseline_run\": " << rc.baseline_run
       << ", \"latest_run\": " << rc.latest_run << ", \"stages\": [\n";
    for (std::size_t s = 0; s < rc.stages.size(); ++s) {
      const ReportStage& rs = rc.stages[s];
      os << "      {\"stage\": \"" << json_escape(rs.stage) << "\""
         << ", \"baseline_ms\": " << rs.baseline_ms
         << ", \"latest_ms\": " << rs.latest_ms
         << ", \"delta_pct\": " << rs.delta_pct
         << ", \"watched\": " << (rs.watched ? "true" : "false")
         << ", \"regressed\": " << (rs.regressed ? "true" : "false") << "}"
         << (s + 1 < rc.stages.size() ? "," : "") << "\n";
    }
    os << "    ]}" << (c + 1 < report.circuits.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string report_to_text(const Report& report) {
  std::ostringstream os;
  os << "ledger " << report.ledger << ": " << report.runs << " run"
     << (report.runs == 1 ? "" : "s") << ", threshold "
     << report.threshold_pct << "%\n";
  TablePrinter table({"circuit", "stage", "baseline_ms", "latest_ms",
                      "delta_%", "flag"});
  for (const ReportCircuit& rc : report.circuits) {
    for (const ReportStage& rs : rc.stages) {
      std::ostringstream delta;
      delta.precision(1);
      delta << std::fixed << std::showpos << rs.delta_pct;
      table.add_row({rc.circuit.empty() ? "-" : rc.circuit, rs.stage,
                     TablePrinter::num(rs.baseline_ms),
                     TablePrinter::num(rs.latest_ms), delta.str(),
                     rs.regressed ? "REGRESSED"
                                  : (rs.watched ? "watched" : "")});
    }
  }
  table.print(os);
  if (report.regressions > 0)
    os << report.regressions << " regression"
       << (report.regressions == 1 ? "" : "s") << " past threshold\n";
  else
    os << "no regressions\n";
  return os.str();
}

}  // namespace fstg
