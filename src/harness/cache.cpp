#include "harness/cache.h"

#include <utility>

#include "atpg/test_io.h"
#include "base/obs/metrics.h"
#include "base/store/fs_util.h"
#include "base/store/hash.h"
#include "base/store/serial.h"
#include "fault/fault_io.h"
#include "kiss/kiss2_writer.h"
#include "netlist/snapshot.h"
#include "seq/uio.h"

namespace fstg::harness {

namespace {

/// Per-stage hit/miss counters, the observable proof that a warm run
/// skipped a derivation (acceptance check for --cache-dir).
void count_stage(const char* stage, bool hit) {
  obs::counter(std::string("cache.") + stage + (hit ? ".hit" : ".miss"))
      .inc();
}

void serialize_generator_result(const GeneratorResult& gen,
                                store::BlobWriter& w) {
  serialize_test_set(gen.tests, w);
  serialize_uio_set(gen.uios, w);
  std::vector<std::int32_t> tested_by(gen.tested_by.begin(),
                                      gen.tested_by.end());
  w.vec_i32(tested_by);
  w.u64(gen.transitions_in_length_one);
  w.f64(gen.uio_seconds);
  w.f64(gen.generation_seconds);
  w.u8(gen.degraded ? 1 : 0);
}

bool deserialize_generator_result(store::BlobReader& r, GeneratorResult* out) {
  GeneratorResult gen;
  if (!deserialize_test_set(r, &gen.tests)) return false;
  if (!deserialize_uio_set(r, &gen.uios)) return false;
  const std::vector<std::int32_t> tested_by = r.vec_i32();
  gen.transitions_in_length_one = r.u64();
  gen.uio_seconds = r.f64();
  gen.generation_seconds = r.f64();
  const std::uint8_t degraded = r.u8();
  if (!r.ok() || degraded > 1) return false;
  gen.degraded = degraded != 0;
  gen.tested_by.assign(tested_by.begin(), tested_by.end());
  const std::int32_t num_tests = static_cast<std::int32_t>(gen.tests.size());
  for (std::int32_t t : gen.tested_by)
    if (t < -1 || t >= num_tests) return false;
  *out = std::move(gen);
  return true;
}

}  // namespace

std::uint64_t synth_key(const Kiss2Fsm& fsm, const SynthesisOptions& options) {
  store::KeyBuilder k;
  k.add("synth");
  k.add_u64(kSynthSchema);
  k.add(write_kiss2(fsm));
  k.add_i64(options.minimize.passes);
  k.add_i64(static_cast<std::int64_t>(options.encoding));
  k.add_bool(options.multilevel);
  k.add_i64(options.max_fanin);
  return k.digest();
}

std::uint64_t gen_key(const StateTable& table,
                      const GeneratorOptions& options) {
  store::BlobWriter canon;
  serialize_state_table(table, canon);
  store::KeyBuilder k;
  k.add("gen");
  k.add_u64(kGenSchema);
  k.add(canon.bytes());
  k.add_i64(options.uio_max_length);
  k.add_i64(options.transfer_max_length);
  k.add_bool(options.postpone_no_uio_starts);
  k.add_u64(options.uio_eval_budget);
  return k.digest();
}

std::uint64_t faults_key(const std::string& blif_text,
                         std::size_t max_bridging_faults) {
  store::KeyBuilder k;
  k.add("faults");
  k.add_u64(kFaultsSchema);
  k.add(blif_text);
  k.add_u64(max_bridging_faults);
  return k.digest();
}

std::uint64_t reach_key(const std::string& blif_text) {
  store::KeyBuilder k;
  k.add("reach");
  k.add_u64(kReachSchema);
  k.add(blif_text);
  return k.digest();
}

bool load_synth(store::Store* s, std::uint64_t key, SynthesisResult* synth,
                StateTable* table, double* synth_seconds) {
  if (!s) return false;
  std::string payload;
  if (!s->get(key, kTypeSynth, kSynthSchema, "synth", &payload)) {
    count_stage("synth", false);
    return false;
  }
  store::BlobReader r(payload);
  SynthesisResult sr;
  StateTable st;
  const double seconds = r.f64();
  if (!deserialize_synthesis_result(r, &sr) ||
      !deserialize_state_table(r, &st) || !r.done() || seconds < 0) {
    count_stage("synth", false);
    return false;
  }
  count_stage("synth", true);
  *synth = std::move(sr);
  *table = std::move(st);
  *synth_seconds = seconds;
  return true;
}

void save_synth(store::Store* s, std::uint64_t key,
                const SynthesisResult& synth, const StateTable& table,
                double synth_seconds) {
  if (!s) return;
  store::BlobWriter w;
  w.f64(synth_seconds);
  serialize_synthesis_result(synth, w);
  serialize_state_table(table, w);
  s->put(key, kTypeSynth, kSynthSchema, "synth", w.bytes());
}

bool load_gen(store::Store* s, std::uint64_t key, GeneratorResult* gen) {
  if (!s) return false;
  std::string payload;
  if (!s->get(key, kTypeGen, kGenSchema, "gen", &payload)) {
    count_stage("gen", false);
    return false;
  }
  store::BlobReader r(payload);
  GeneratorResult g;
  // A degraded blob should never have been written; treat one as damage.
  if (!deserialize_generator_result(r, &g) || !r.done() || g.degraded) {
    count_stage("gen", false);
    return false;
  }
  count_stage("gen", true);
  *gen = std::move(g);
  return true;
}

void save_gen(store::Store* s, std::uint64_t key, const GeneratorResult& gen) {
  if (!s || gen.degraded) return;
  store::BlobWriter w;
  serialize_generator_result(gen, w);
  s->put(key, kTypeGen, kGenSchema, "gen", w.bytes());
}

bool load_faults(store::Store* s, std::uint64_t key, int num_gates,
                 std::vector<FaultSpec>* sa, std::vector<FaultSpec>* br,
                 std::size_t* br_enumerated) {
  if (!s) return false;
  std::string payload;
  if (!s->get(key, kTypeFaults, kFaultsSchema, "faults", &payload)) {
    count_stage("faults", false);
    return false;
  }
  store::BlobReader r(payload);
  std::vector<FaultSpec> sa_list, br_list;
  const std::uint64_t enumerated = r.u64();
  if (!deserialize_fault_specs(r, num_gates, &sa_list) ||
      !deserialize_fault_specs(r, num_gates, &br_list) || !r.done() ||
      enumerated < br_list.size()) {
    count_stage("faults", false);
    return false;
  }
  count_stage("faults", true);
  *sa = std::move(sa_list);
  *br = std::move(br_list);
  *br_enumerated = enumerated;
  return true;
}

void save_faults(store::Store* s, std::uint64_t key,
                 const std::vector<FaultSpec>& sa,
                 const std::vector<FaultSpec>& br,
                 std::size_t br_enumerated) {
  if (!s) return;
  store::BlobWriter w;
  w.u64(br_enumerated);
  serialize_fault_specs(sa, w);
  serialize_fault_specs(br, w);
  s->put(key, kTypeFaults, kFaultsSchema, "faults", w.bytes());
}

bool load_reach(store::Store* s, std::uint64_t key, std::size_t num_gates,
                std::vector<BitVec>* reach) {
  if (!s) return false;
  std::string payload;
  if (!s->get(key, kTypeReach, kReachSchema, "reach", &payload)) {
    count_stage("reach", false);
    return false;
  }
  store::BlobReader r(payload);
  std::vector<BitVec> rows;
  if (!deserialize_bitvec_matrix(r, &rows) || !r.done() ||
      rows.size() != num_gates) {
    count_stage("reach", false);
    return false;
  }
  for (const BitVec& row : rows) {
    if (row.size() != num_gates) {
      count_stage("reach", false);
      return false;
    }
  }
  count_stage("reach", true);
  *reach = std::move(rows);
  return true;
}

void save_reach(store::Store* s, std::uint64_t key,
                const std::vector<BitVec>& reach) {
  if (!s) return;
  store::BlobWriter w;
  serialize_bitvec_matrix(reach, w);
  s->put(key, kTypeReach, kReachSchema, "reach", w.bytes());
}

bool checkpoint_done(store::Store* s, const std::string& campaign,
                     const std::string& circuit) {
  if (!s || campaign.empty()) return false;
  const std::string dir = s->checkpoint_dir(campaign);
  if (dir.empty()) return false;
  return store::file_exists(dir + "/" + circuit + ".done");
}

void checkpoint_mark(store::Store* s, const std::string& campaign,
                     const std::string& circuit, const std::string& outcome) {
  if (!s || campaign.empty()) return;
  static const obs::Counter c_written =
      obs::counter("harness.checkpoint.written");
  static const obs::Counter c_failed =
      obs::counter("harness.checkpoint.write_failed");
  const std::string dir = s->checkpoint_dir(campaign);
  if (dir.empty()) {
    c_failed.inc();
    return;
  }
  std::string error;
  if (store::atomic_write_file(dir + "/" + circuit + ".done", outcome + "\n",
                               &error))
    c_written.inc();
  else
    c_failed.inc();
}

}  // namespace fstg::harness
