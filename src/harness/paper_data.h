#pragma once

#include <string>
#include <vector>

namespace fstg {

/// The numbers Pomeranz & Reddy report (DATE 2000), transcribed for
/// side-by-side printing in the benchmark harness and for the
/// paper-vs-measured record in EXPERIMENTS.md. Absolute values are not
/// expected to match for the 29 synthetic stand-in circuits (see
/// DESIGN.md); lion and shiftreg anchor exact comparisons.

struct PaperTable4Row {
  std::string circuit;
  int pi, states, unique, sv, mlen;
  double seconds;  // HP J210 workstation
};
const std::vector<PaperTable4Row>& paper_table4();

struct PaperTable5Row {
  std::string circuit;
  long long trans, tests, len;
  double onelen_percent;
  double seconds;
};
const std::vector<PaperTable5Row>& paper_table5();

struct PaperTable6Row {
  std::string circuit;
  int sa_tests, sa_len, sa_total, sa_detected;
  double sa_coverage;
  int br_tests, br_len, br_total, br_detected;
  double br_coverage;
};
const std::vector<PaperTable6Row>& paper_table6();

struct PaperTable7Row {
  std::string circuit;
  long long trans_cycles, funct_cycles;
  double funct_percent;
  long long sa_cycles;
  double sa_percent;
  long long br_cycles;
  double br_percent;
};
const std::vector<PaperTable7Row>& paper_table7();

struct PaperTable8Row {
  std::string circuit;
  long long trans, tests, len;
  double onelen_percent;
  long long cycles;
  double percent;
};
const std::vector<PaperTable8Row>& paper_table8();

struct PaperTable9Row {
  int unique, mlen;
  long long tests, len;
  double onelen_percent;
  long long cycles;
  double percent;
};
/// Sweeps for dk512, ex4, mark1, rie (the paper's Table 9 subjects).
const std::vector<std::string>& paper_table9_circuits();
const std::vector<PaperTable9Row>& paper_table9(const std::string& circuit);

/// Lookup helpers; return nullptr if the circuit is absent from the table.
const PaperTable4Row* find_paper_table4(const std::string& circuit);
const PaperTable5Row* find_paper_table5(const std::string& circuit);
const PaperTable6Row* find_paper_table6(const std::string& circuit);
const PaperTable7Row* find_paper_table7(const std::string& circuit);

}  // namespace fstg
