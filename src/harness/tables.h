#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace fstg {

/// --- Table 2 (and the Section 2 walkthrough): lion ---------------------

struct Table2Row {
  std::string state;
  bool has_uio = false;
  std::string sequence;  ///< space-separated input combinations, "-" if none
  std::string final_state;
};

/// UIO sequences of a circuit (paper prints lion). Also returns the
/// experiment so callers can print the generated tests tau_0..tau_8.
std::vector<Table2Row> compute_table2(const CircuitExperiment& exp);
void print_table2(const std::vector<Table2Row>& rows, std::ostream& os);

/// --- Table 3: stuck-at simulation of the functional tests, longest first

struct Table3Row {
  std::string test;    ///< paper-style rendering of the test
  int length = 0;
  std::size_t detected_cumulative = 0;
  bool effective = false;
};

std::vector<Table3Row> compute_table3(const CircuitExperiment& exp,
                                      const GateLevelResult& gate);
void print_table3(const std::vector<Table3Row>& rows, std::size_t total_faults,
                  std::ostream& os);

/// --- Table 4: circuit parameters + UIO derivation ----------------------

struct Table4Row {
  std::string circuit;
  int pi = 0, states = 0, unique = 0, sv = 0, mlen = 0;
  double seconds = 0.0;
};

Table4Row compute_table4_row(const CircuitExperiment& exp);
void print_table4(const std::vector<Table4Row>& rows, std::ostream& os);

/// --- Table 5: functional test generation --------------------------------

struct Table5Row {
  std::string circuit;
  long long trans = 0, tests = 0, len = 0;
  double onelen_percent = 0.0;
  double seconds = 0.0;
};

Table5Row compute_table5_row(const CircuitExperiment& exp);
void print_table5(const std::vector<Table5Row>& rows, std::ostream& os);

/// --- Table 6: gate-level stuck-at and bridging coverage -----------------

struct Table6Row {
  std::string circuit;
  long long sa_tests = 0, sa_len = 0, sa_total = 0, sa_detected = 0;
  double sa_coverage = 0.0;
  long long br_tests = 0, br_len = 0, br_total = 0, br_detected = 0;
  double br_coverage = 0.0;
  /// True when every undetected fault was proven combinationally
  /// undetectable by the exhaustive check (the paper's complete-coverage
  /// claim for detectable faults).
  bool sa_complete = false;
  bool br_complete = false;
};

Table6Row compute_table6_row(const CircuitExperiment& exp,
                             const GateLevelResult& gate);
void print_table6(const std::vector<Table6Row>& rows, std::ostream& os);

/// --- Table 7: clock cycles ----------------------------------------------

struct Table7Row {
  std::string circuit;
  long long trans_cycles = 0;
  long long funct_cycles = 0;
  double funct_percent = 0.0;
  long long sa_cycles = 0;
  double sa_percent = 0.0;
  long long br_cycles = 0;
  double br_percent = 0.0;
};

Table7Row compute_table7_row(const CircuitExperiment& exp,
                             const GateLevelResult& gate);
void print_table7(const std::vector<Table7Row>& rows, std::ostream& os);

/// --- Table 8: generation without transfer sequences ---------------------

struct Table8Row {
  std::string circuit;
  long long trans = 0, tests = 0, len = 0;
  double onelen_percent = 0.0;
  long long cycles = 0;
  double percent = 0.0;
};

Table8Row compute_table8_row(const CircuitExperiment& exp_no_transfer);
void print_table8(const std::vector<Table8Row>& rows, std::ostream& os);

/// --- Table 9: UIO length-bound sweep -------------------------------------

struct Table9Row {
  int unique = 0, mlen = 0;
  long long tests = 0, len = 0;
  double onelen_percent = 0.0;
  long long cycles = 0;
  double percent = 0.0;
};

/// Sweep L = 1, 2, 3, ... (transfer length 1) until raising L no longer
/// increases the number of states with a UIO, exactly as the paper does.
std::vector<Table9Row> compute_table9(const std::string& circuit,
                                      const ExperimentOptions& options = {});
void print_table9(const std::string& circuit,
                  const std::vector<Table9Row>& rows, std::ostream& os);

}  // namespace fstg
