#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/store/ledger.h"

namespace fstg {

/// --- Ledger regression analytics (`fstg report`) --------------------------
///
/// Aggregates the run ledger into per-circuit timing trends: for every
/// circuit, the chosen baseline run is compared stage-by-stage against the
/// latest run, and watched stages whose latest wall time degrades past the
/// threshold are flagged as regressions. `--check-regression` turns the
/// verdict into the exit code (2 on any regression), making the ledger a
/// machine-checkable bench trajectory instead of a write-only log.

struct ReportOptions {
  /// Baseline run id. Negative = each circuit's earliest ledgered run.
  std::int64_t baseline_run = -1;
  /// Stage names to gate on ("parallel", "end_to_end", "fault_sim.run",
  /// ...). A trailing "_ms" on a spec is ignored, so bench column names
  /// ("parallel_ms") work verbatim. Empty = watch every stage.
  std::vector<std::string> watch;
  /// A watched stage regresses when
  ///   latest_ms > baseline_ms * (1 + threshold_pct/100) + slack_ms.
  /// The absolute slack keeps microsecond-scale stages from tripping the
  /// relative gate on scheduler noise.
  double threshold_pct = 10.0;
  double slack_ms = 1.0;
};

/// One stage of one circuit, baseline vs latest.
struct ReportStage {
  std::string stage;
  double baseline_ms = 0.0;
  double latest_ms = 0.0;
  double delta_pct = 0.0;  ///< 0 when baseline_ms == 0
  bool watched = false;
  bool regressed = false;
};

/// One circuit's trend: its ledgered run count, the two runs compared, and
/// the union of their stages (name-sorted).
struct ReportCircuit {
  std::string circuit;
  std::uint64_t runs = 0;
  std::uint64_t baseline_run = 0;
  std::uint64_t latest_run = 0;
  std::vector<ReportStage> stages;
};

struct Report {
  std::string ledger;  ///< path the records came from
  std::uint64_t runs = 0;
  double threshold_pct = 0.0;
  std::vector<std::string> watched;  ///< normalized watch specs ("" = all)
  std::vector<ReportCircuit> circuits;
  std::uint64_t regressions = 0;
  bool regressed() const { return regressions > 0; }
};

/// Build the report from ledgered records (circuit-less records, e.g. whole
/// suite runs, group under circuit ""). Pure: no filesystem access.
Report build_report(const std::vector<store::RunRecord>& records,
                    const ReportOptions& options, const std::string& ledger);

/// Render as schema fstg.report.v1 (schemas/fstg_report.schema.json);
/// self-checked by writers with obs::validate_report_json.
std::string report_to_json(const Report& report);

/// Human-readable table for the terminal.
std::string report_to_text(const Report& report);

}  // namespace fstg
