#pragma once

#include "base/robust/budget.h"
#include "fsm/state_table.h"
#include "kiss/kiss2.h"
#include "lint/diagnostic.h"

namespace fstg::lint {

/// Options for the table-based FSM analyses.
struct FsmLintOptions {
  /// UIO length bound L; 0 means the machine's state_bits() (the paper's
  /// N_SV bound — a UIO longer than a scan operation is never applied).
  int uio_max_length = 0;
  bool check_equivalence = true;
  bool check_uio = true;
};

/// Symbolic analyses on the KISS2 rows — no completion or determinization
/// needed, so they run on any parsed machine:
///   fsm-nondeterministic   overlapping rows, conflicting next/output
///   fsm-redundant-row      row subsumed by an earlier row
///   fsm-incomplete         uncovered (state, input) combinations
///   fsm-unreachable-state  not reachable from the reset state
/// `guard` is ticked per row pair / state; on exhaustion the report is
/// marked truncated and the remaining checks are skipped.
void lint_fsm_symbolic(const Kiss2Fsm& fsm, robust::RunGuard& guard,
                       LintReport& report);

/// Functional-testability analyses on the (deterministic, completed) state
/// table the generator will operate on:
///   fsm-equivalent-states  output-equivalent state pairs (reducible)
///   fsm-no-uio             states with no UIO of length <= L, with the
///                          state pairs that block one
/// The table should be the same one the pipeline derives its tests from
/// (read back from the synthesized netlist when available).
void lint_state_table(const StateTable& table, const FsmLintOptions& options,
                      robust::RunGuard& guard, LintReport& report);

}  // namespace fstg::lint
