#include "lint/fsm_lint.h"

#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fsm/minimize.h"
#include "seq/distinguishing.h"
#include "seq/uio.h"

namespace fstg::lint {

namespace {

/// Do two {0,1,-} cubes share a minterm? Mirrors kiss2.cpp exactly: the
/// fuzz harness enforces `no fsm-nondeterministic finding <=> expand_fsm
/// accepts`, so this predicate must not drift from check_deterministic's.
bool cubes_intersect(const std::string& a, const std::string& b) {
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != '-' && b[i] != '-' && a[i] != b[i]) return false;
  return true;
}

/// No bit specified 0 in one pattern and 1 in the other (kiss2.cpp mirror).
bool outputs_compatible(const std::string& a, const std::string& b) {
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != '-' && b[i] != '-' && a[i] != b[i]) return false;
  return true;
}

/// Removing row `b` changes nothing when `a` stays: b's input cube is
/// contained in a's, the next states agree, and every output bit b
/// specifies is specified identically by a.
bool row_subsumes(const Kiss2Row& a, const Kiss2Row& b) {
  if (a.next != b.next) return false;
  for (std::size_t i = 0; i < a.input.size(); ++i)
    if (a.input[i] != '-' && a.input[i] != b.input[i]) return false;
  for (std::size_t i = 0; i < a.output.size(); ++i)
    if (b.output[i] != '-' && a.output[i] != b.output[i]) return false;
  return true;
}

/// MSB-first bit string of an input combination (KISS2 column order).
std::string combo_string(std::uint32_t ic, int bits) {
  std::string s(static_cast<std::size_t>(bits), '0');
  for (int b = 0; b < bits; ++b)
    if ((ic >> b) & 1u) s[static_cast<std::size_t>(bits - 1 - b)] = '1';
  return s;
}

std::string state_label(const StateTable& table, int s) {
  if (s >= 0 && static_cast<std::size_t>(s) < table.state_names.size() &&
      !table.state_names[static_cast<std::size_t>(s)].empty())
    return table.state_names[static_cast<std::size_t>(s)];
  return "s" + std::to_string(s);
}

/// Row indices of each present state, traversed in state_names order so
/// finding order is deterministic.
std::unordered_map<std::string, std::vector<std::size_t>> rows_by_present(
    const Kiss2Fsm& fsm) {
  std::unordered_map<std::string, std::vector<std::size_t>> by_present;
  for (std::size_t i = 0; i < fsm.rows.size(); ++i)
    by_present[fsm.rows[i].present].push_back(i);
  return by_present;
}

}  // namespace

void lint_fsm_symbolic(const Kiss2Fsm& fsm, robust::RunGuard& guard,
                       LintReport& report) {
  const auto by_present = rows_by_present(fsm);

  // --- fsm-nondeterministic / fsm-redundant-row: pairwise within a state.
  for (const std::string& state : fsm.state_names) {
    const auto it = by_present.find(state);
    if (it == by_present.end()) continue;
    const std::vector<std::size_t>& idxs = it->second;
    for (std::size_t i = 0; i < idxs.size(); ++i) {
      for (std::size_t j = i + 1; j < idxs.size(); ++j) {
        if (!guard.tick()) {
          report.truncated = true;
          return;
        }
        const Kiss2Row& a = fsm.rows[idxs[i]];
        const Kiss2Row& b = fsm.rows[idxs[j]];
        if (!cubes_intersect(a.input, b.input)) continue;
        if (a.next != b.next || !outputs_compatible(a.output, b.output)) {
          report.add("fsm-nondeterministic",
                     "state " + state + ": rows at lines " +
                         std::to_string(a.line) + " and " +
                         std::to_string(b.line) + " overlap on inputs " +
                         a.input + " and " + b.input +
                         " with conflicting next state or outputs",
                     "make the input cubes disjoint, or give the rows the "
                     "same next state and compatible outputs",
                     {report.source, b.line});
        } else if (row_subsumes(a, b)) {
          report.add("fsm-redundant-row",
                     "row at line " + std::to_string(b.line) +
                         " is subsumed by the row at line " +
                         std::to_string(a.line) + " (state " + state +
                         ", input " + a.input + " covers " + b.input + ")",
                     "delete the subsumed row",
                     {report.source, b.line});
        } else if (row_subsumes(b, a)) {
          report.add("fsm-redundant-row",
                     "row at line " + std::to_string(a.line) +
                         " is subsumed by the row at line " +
                         std::to_string(b.line) + " (state " + state +
                         ", input " + b.input + " covers " + a.input + ")",
                     "delete the subsumed row",
                     {report.source, a.line});
        }
      }
    }
  }

  // --- fsm-incomplete: uncovered (state, input) combinations. One finding
  // per machine; the per-state breakdown would drown real problems on the
  // benchmark suite, where partial specification is the norm.
  if (fsm.num_inputs <= 20) {
    const std::uint32_t nic = 1u << fsm.num_inputs;
    int incomplete_states = 0;
    std::uint64_t uncovered_total = 0;
    std::string example_state;
    std::uint32_t example_ic = 0;
    for (const std::string& state : fsm.state_names) {
      if (!guard.tick(nic)) {
        report.truncated = true;
        return;
      }
      std::vector<bool> covered(nic, false);
      const auto it = by_present.find(state);
      if (it != by_present.end()) {
        for (std::size_t ri : it->second) {
          const Kiss2Row& row = fsm.rows[ri];
          std::uint32_t value = 0;
          std::vector<int> free_bits;
          for (int b = 0; b < fsm.num_inputs; ++b) {
            const char c =
                row.input[static_cast<std::size_t>(fsm.num_inputs - 1 - b)];
            if (c == '-')
              free_bits.push_back(b);
            else if (c == '1')
              value |= 1u << b;
          }
          const std::uint32_t n_free = 1u << free_bits.size();
          for (std::uint32_t m = 0; m < n_free; ++m) {
            std::uint32_t ic = value;
            for (std::size_t k = 0; k < free_bits.size(); ++k)
              if ((m >> k) & 1u) ic |= 1u << free_bits[k];
            covered[ic] = true;
          }
        }
      }
      std::uint64_t uncovered = 0;
      for (std::uint32_t ic = 0; ic < nic; ++ic) {
        if (covered[ic]) continue;
        if (uncovered == 0 && incomplete_states == 0) {
          example_state = state;
          example_ic = ic;
        }
        ++uncovered;
      }
      if (uncovered > 0) {
        ++incomplete_states;
        uncovered_total += uncovered;
      }
    }
    if (incomplete_states > 0) {
      report.add("fsm-incomplete",
                 std::to_string(incomplete_states) + " of " +
                     std::to_string(fsm.num_states()) +
                     " states leave input combinations unspecified (" +
                     std::to_string(uncovered_total) +
                     " in total; e.g. state " + example_state + ", input " +
                     combo_string(example_ic, fsm.num_inputs) + ")",
                 "add rows for the missing combinations, or rely on the "
                 "synthesizer's completion and treat this as informational");
    }
  }

  // --- fsm-unreachable-state: BFS over the symbolic transition graph.
  if (!fsm.rows.empty()) {
    const std::string start =
        !fsm.reset_state.empty() ? fsm.reset_state : fsm.rows[0].present;
    std::unordered_set<std::string> reached{start};
    std::queue<std::string> frontier;
    frontier.push(start);
    while (!frontier.empty()) {
      const std::string state = std::move(frontier.front());
      frontier.pop();
      const auto it = by_present.find(state);
      if (it == by_present.end()) continue;
      for (std::size_t ri : it->second) {
        if (!guard.tick()) {
          report.truncated = true;
          return;
        }
        const std::string& next = fsm.rows[ri].next;
        if (reached.insert(next).second) frontier.push(next);
      }
    }
    for (const std::string& state : fsm.state_names) {
      if (reached.count(state) > 0) continue;
      int line = 0;
      const auto it = by_present.find(state);
      if (it != by_present.end() && !it->second.empty())
        line = fsm.rows[it->second.front()].line;
      report.add("fsm-unreachable-state",
                 "state " + state + " is not reachable from " +
                     (!fsm.reset_state.empty() ? "reset state "
                                               : "initial state ") +
                     start,
                 "remove the state, or add a transition into it",
                 {report.source, line});
    }
  }
}

void lint_state_table(const StateTable& table, const FsmLintOptions& options,
                      robust::RunGuard& guard, LintReport& report) {
  // --- fsm-equivalent-states: partition refinement; one finding per
  // multi-state equivalence class.
  if (options.check_equivalence) {
    if (!guard.tick(table.num_transitions())) {
      report.truncated = true;
      return;
    }
    const MinimizationResult min = minimize(table);
    if (min.num_blocks < table.num_states()) {
      std::vector<std::vector<int>> members(
          static_cast<std::size_t>(min.num_blocks));
      for (int s = 0; s < table.num_states(); ++s)
        members[static_cast<std::size_t>(min.block_of_state[s])].push_back(s);
      for (const std::vector<int>& block : members) {
        if (block.size() < 2) continue;
        std::string names;
        for (int s : block) {
          if (!names.empty()) names += ", ";
          names += state_label(table, s);
        }
        report.add("fsm-equivalent-states",
                   "states " + names +
                       " are output-equivalent; the machine is reducible",
                   "merge the equivalent states — none of them can have a "
                   "UIO sequence");
      }
    }
  }

  // --- fsm-no-uio: states without a UIO of length <= L, with the state
  // pairs that block one (every t the state cannot be told apart from
  // within L inputs).
  if (options.check_uio) {
    UioOptions uio_options;
    uio_options.max_length = options.uio_max_length;
    const UioSet uios = derive_uio_sequences(table, uio_options);
    const int max_len = uio_options.effective_max_length(table);
    if (!uios.complete()) report.truncated = true;
    for (int s = 0; s < table.num_states(); ++s) {
      const UioSequence& uio = uios.of(s);
      // An aborted search is a budget artifact, not evidence of absence.
      if (uio.exists || uio.aborted) continue;
      std::vector<std::string> blocking;
      bool pairs_cut = false;
      for (int t = 0; t < table.num_states() && !pairs_cut; ++t) {
        if (t == s) continue;
        const DistinguishingSearch search =
            distinguishing_sequence_guarded(table, s, t, guard);
        if (search.budget_exhausted) {
          pairs_cut = true;
          report.truncated = true;
          break;
        }
        if (!search.seq || static_cast<int>(search.seq->size()) > max_len)
          blocking.push_back(state_label(table, t));
      }
      std::string message = "state " + state_label(table, s) +
                            " has no UIO sequence of length <= " +
                            std::to_string(max_len);
      if (!blocking.empty()) {
        message += "; indistinguishable within " + std::to_string(max_len) +
                   " inputs from ";
        constexpr std::size_t kMaxListed = 4;
        for (std::size_t i = 0; i < blocking.size() && i < kMaxListed; ++i) {
          if (i > 0) message += ", ";
          message += blocking[i];
        }
        if (blocking.size() > kMaxListed)
          message +=
              " (+" + std::to_string(blocking.size() - kMaxListed) + " more)";
      } else if (pairs_cut) {
        message += " (pair analysis cut short by the lint budget)";
      }
      report.add("fsm-no-uio", message,
                 "the generator falls back to scan-out for this state; to "
                 "restore test chaining, make its output behaviour unique");
      if (pairs_cut) break;
    }
  }
}

}  // namespace fstg::lint
