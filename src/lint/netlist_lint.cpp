#include "lint/netlist_lint.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/bitvec.h"
#include "base/error.h"
#include "base/string_util.h"
#include "netlist/reach.h"

namespace fstg::lint {

namespace {

std::string gate_label(const Netlist& nl, int id) {
  const Gate& g = nl.gate(id);
  return g.name.empty() ? strf("%s#%d", gate_type_name(g.type), id) : g.name;
}

/// Consumer -> producer edges among .names blocks (through block-output
/// nets only; latch outputs break combinational paths by construction).
std::vector<std::vector<int>> block_graph(const BlifModel& model) {
  std::unordered_map<std::string, int> producer;
  for (std::size_t b = 0; b < model.blocks.size(); ++b)
    producer.emplace(model.blocks[b].output, static_cast<int>(b));
  std::vector<std::vector<int>> adj(model.blocks.size());
  for (std::size_t b = 0; b < model.blocks.size(); ++b) {
    for (const std::string& in : model.blocks[b].inputs) {
      const auto it = producer.find(in);
      if (it != producer.end()) adj[b].push_back(it->second);
    }
  }
  return adj;
}

/// Iterative Tarjan SCC; returns components in discovery order. A cycle is
/// a component of size >= 2, or a single block that feeds itself.
std::vector<std::vector<int>> strongly_connected_components(
    const std::vector<std::vector<int>>& adj, robust::RunGuard& guard,
    bool* cut_short) {
  const int n = static_cast<int>(adj.size());
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  std::vector<std::vector<int>> components;
  int counter = 0;

  struct Frame {
    int v;
    std::size_t edge;
  };
  std::vector<Frame> frames;
  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    frames.push_back({root, 0});
    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::size_t v = static_cast<std::size_t>(f.v);
      if (f.edge == 0) {
        index[v] = low[v] = counter++;
        stack.push_back(f.v);
        on_stack[v] = true;
      }
      if (!guard.tick()) {
        *cut_short = true;
        return components;
      }
      if (f.edge < adj[v].size()) {
        const int w = adj[v][f.edge++];
        const std::size_t wu = static_cast<std::size_t>(w);
        if (index[wu] == -1) {
          frames.push_back({w, 0});
        } else if (on_stack[wu]) {
          if (index[wu] < low[v]) low[v] = index[wu];
        }
        continue;
      }
      if (low[v] == index[v]) {
        std::vector<int> component;
        int w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          component.push_back(w);
        } while (w != f.v);
        components.push_back(std::move(component));
      }
      const int done = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        const std::size_t p = static_cast<std::size_t>(frames.back().v);
        if (low[static_cast<std::size_t>(done)] < low[p])
          low[p] = low[static_cast<std::size_t>(done)];
      }
    }
  }
  return components;
}

}  // namespace

void lint_blif_model(const BlifModel& model, robust::RunGuard& guard,
                     LintReport& report) {
  // The strict parser (`parse_blif`) must reject exactly the models this
  // function reports errors for — the fuzz harness enforces it. Keep the
  // two in sync when adding checks.
  if (model.inputs.empty() && model.latches.empty())
    report.add("scan-chain-broken",
               "model declares no .inputs and no .latch lines",
               "a circuit needs at least one input or state variable",
               {report.source, 1});
  if (model.outputs.empty())
    report.add("scan-chain-broken", "model declares no .outputs",
               "declare the observable nets with .outputs",
               {report.source, 1});

  // Driver and consumer tables, in declaration order.
  struct Driver {
    std::string what;
    int line;
  };
  std::vector<std::pair<std::string, Driver>> drivers;
  for (const BlifNetDecl& in : model.inputs)
    drivers.push_back({in.net, {"primary input", in.line}});
  for (const BlifLatch& latch : model.latches)
    drivers.push_back({latch.state_out, {"latch output", latch.line}});
  for (const BlifNames& block : model.blocks)
    drivers.push_back({block.output, {".names output", block.line}});

  struct Use {
    std::string what;
    int line;
  };
  std::vector<std::pair<std::string, Use>> uses;
  for (const BlifNames& block : model.blocks)
    for (const std::string& in : block.inputs)
      uses.push_back({in, {".names input", block.line}});
  for (const BlifLatch& latch : model.latches)
    uses.push_back({latch.data_in, {"latch input", latch.line}});
  for (const BlifNetDecl& out : model.outputs)
    uses.push_back({out.net, {"primary output", out.line}});

  // net-multiple-drivers: one finding per over-driven net.
  std::unordered_map<std::string, const Driver*> first_driver;
  std::unordered_set<std::string> reported_multi;
  for (const auto& [net, driver] : drivers) {
    if (!guard.tick()) {
      report.truncated = true;
      return;
    }
    const auto [it, inserted] = first_driver.emplace(net, &driver);
    if (!inserted && reported_multi.insert(net).second) {
      report.add("net-multiple-drivers",
                 "net " + net + " has multiple drivers: " + it->second->what +
                     " at line " + std::to_string(it->second->line) +
                     " and " + driver.what + " at line " +
                     std::to_string(driver.line),
                 "rename one of the drivers or delete the duplicate",
                 {report.source, driver.line});
    }
  }

  // net-undriven: one finding per missing net, at its first use.
  std::unordered_set<std::string> reported_undriven;
  std::unordered_set<std::string> used;
  for (const auto& [net, use] : uses) {
    if (!guard.tick()) {
      report.truncated = true;
      return;
    }
    used.insert(net);
    if (first_driver.count(net) == 0 && reported_undriven.insert(net).second) {
      report.add("net-undriven",
                 "net " + net + " is used as " + use.what +
                     " but nothing drives it",
                 "declare it in .inputs or drive it with a .names block",
                 {report.source, use.line});
    }
  }

  // net-dangling: driven but consumed nowhere.
  std::unordered_set<std::string> reported_dangling;
  for (const auto& [net, driver] : drivers) {
    if (used.count(net) > 0) continue;
    if (!reported_dangling.insert(net).second) continue;
    report.add("net-dangling",
               "net " + net + " (" + driver.what +
                   ") is never used by any block, latch, or output",
               "delete it or connect it",
               {report.source, driver.line});
  }

  // net-comb-cycle: SCCs of the block dependency graph.
  bool cut_short = false;
  const std::vector<std::vector<int>> adj = block_graph(model);
  for (const std::vector<int>& component :
       strongly_connected_components(adj, guard, &cut_short)) {
    bool cyclic = component.size() >= 2;
    if (!cyclic) {
      const std::size_t v = static_cast<std::size_t>(component[0]);
      for (int w : adj[v])
        if (w == component[0]) cyclic = true;
    }
    if (!cyclic) continue;
    std::string nets;
    constexpr std::size_t kMaxListed = 8;
    for (std::size_t i = 0; i < component.size() && i < kMaxListed; ++i) {
      if (i > 0) nets += " -> ";
      nets += model.blocks[static_cast<std::size_t>(component[i])].output;
    }
    if (component.size() > kMaxListed)
      nets += " -> ... (+" + std::to_string(component.size() - kMaxListed) +
              " more)";
    int line = model.blocks[static_cast<std::size_t>(component[0])].line;
    for (int b : component)
      if (model.blocks[static_cast<std::size_t>(b)].line < line)
        line = model.blocks[static_cast<std::size_t>(b)].line;
    report.add("net-comb-cycle",
               "combinational cycle among .names blocks: " + nets,
               "break the loop with a .latch or restructure the logic",
               {report.source, line});
  }
  if (cut_short) report.truncated = true;
}

void lint_scan_circuit(const ScanCircuit& circuit, robust::RunGuard& guard,
                       LintReport& report) {
  const Netlist& nl = circuit.comb;

  // scan-chain-broken: the full-scan port contract.
  if (circuit.num_pi < 0 || circuit.num_po < 0 || circuit.num_sv < 0 ||
      nl.num_inputs() != circuit.comb_inputs() ||
      nl.num_outputs() != circuit.comb_outputs()) {
    report.add("scan-chain-broken",
               "combinational core has " + std::to_string(nl.num_inputs()) +
                   " inputs / " + std::to_string(nl.num_outputs()) +
                   " outputs but the scan bookkeeping declares " +
                   std::to_string(circuit.num_pi) + " PI + " +
                   std::to_string(circuit.num_sv) + " SV and " +
                   std::to_string(circuit.num_po) + " PO + " +
                   std::to_string(circuit.num_sv) + " SV",
               "the core's ports must be [PI][SV] -> [PO][next SV]");
    return;  // the index arithmetic below would be meaningless
  }

  // Observability: backward BFS from the outputs over fanins.
  BitVec observable(static_cast<std::size_t>(nl.num_gates()));
  {
    std::vector<int> stack;
    for (int out : nl.outputs()) {
      if (!observable.test(static_cast<std::size_t>(out))) {
        observable.set(static_cast<std::size_t>(out));
        stack.push_back(out);
      }
    }
    while (!stack.empty()) {
      const int g = stack.back();
      stack.pop_back();
      if (!guard.tick()) {
        report.truncated = true;
        return;
      }
      for (int fi : nl.gate(g).fanins) {
        if (observable.test(static_cast<std::size_t>(fi))) continue;
        observable.set(static_cast<std::size_t>(fi));
        stack.push_back(fi);
      }
    }
  }

  // Cross-check against the independent forward-reachability oracle
  // (netlist/reach.cpp): a gate is observable iff it is an output or some
  // output lies strictly downstream of it. Budget exhaustion skips the
  // cross-check (the BFS result stands), it never fabricates findings.
  {
    robust::Result<std::vector<BitVec>> reach =
        forward_reachability_guarded(nl, guard);
    if (reach.is_ok()) {
      BitVec is_output(static_cast<std::size_t>(nl.num_gates()));
      for (int out : nl.outputs()) is_output.set(static_cast<std::size_t>(out));
      for (int g = 0; g < nl.num_gates(); ++g) {
        bool reaches_output = is_output.test(static_cast<std::size_t>(g));
        for (int out : nl.outputs())
          if (reach.value()[static_cast<std::size_t>(g)].test(
                  static_cast<std::size_t>(out)))
            reaches_output = true;
        require(reaches_output == observable.test(static_cast<std::size_t>(g)),
                "lint: observability BFS disagrees with forward_reachability "
                "for gate " +
                    gate_label(nl, g));
      }
    } else {
      report.truncated = true;
    }
  }

  // net-dangling / scan-sv-unused: unobservable primary inputs and state
  // variables (distinct rules — a dead SV means the machine has fewer
  // reachable states than its encoding suggests).
  for (int i = 0; i < nl.num_inputs(); ++i) {
    const int g = nl.inputs()[static_cast<std::size_t>(i)];
    if (observable.test(static_cast<std::size_t>(g))) continue;
    if (i < circuit.num_pi) {
      report.add("net-dangling",
                 "primary input " + gate_label(nl, g) +
                     " affects no output or next-state function",
                 "remove the input or connect it");
    } else {
      report.add("scan-sv-unused",
                 "state variable " + std::to_string(i - circuit.num_pi) +
                     " (" + gate_label(nl, g) +
                     ") affects no output or next-state function",
                 "the encoding wastes a scan cell; re-encode with fewer "
                 "state variables");
    }
  }

  // net-dead-cone: unobservable logic gates, summarized in one finding.
  {
    int dead = 0;
    std::string examples;
    constexpr int kMaxListed = 8;
    for (int g = 0; g < nl.num_gates(); ++g) {
      if (nl.gate(g).type == GateType::kInput) continue;
      if (observable.test(static_cast<std::size_t>(g))) continue;
      ++dead;
      if (dead <= kMaxListed) {
        if (!examples.empty()) examples += ", ";
        examples += gate_label(nl, g);
      }
    }
    if (dead > 0) {
      if (dead > kMaxListed)
        examples += ", ... (+" + std::to_string(dead - kMaxListed) + " more)";
      report.add("net-dead-cone",
                 std::to_string(dead) +
                     " gate(s) drive no primary or next-state output: " +
                     examples,
                 "dead logic inflates the fault list with undetectable "
                 "faults; remove it");
    }
  }

  // scan-sv-constant: next-state function that is a constant (through any
  // buffer chain).
  for (int k = 0; k < circuit.num_sv; ++k) {
    int g = nl.outputs()[static_cast<std::size_t>(circuit.num_po + k)];
    while (nl.gate(g).type == GateType::kBuf) g = nl.gate(g).fanins[0];
    const GateType type = nl.gate(g).type;
    if (type != GateType::kConst0 && type != GateType::kConst1) continue;
    report.add("scan-sv-constant",
               "state variable " + std::to_string(k) +
                   " is always loaded with constant " +
                   (type == GateType::kConst1 ? "1" : "0"),
               "the variable never toggles functionally; it only moves "
               "during scan");
  }
}

}  // namespace fstg::lint
