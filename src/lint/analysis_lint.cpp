#include "lint/analysis_lint.h"

#include <string>

#include "analysis/static_faults.h"
#include "fault/fault.h"

namespace fstg::lint {

namespace {

std::string gate_label(const Netlist& nl, int g) {
  const std::string& name = nl.gate(g).name;
  return name.empty() ? "#" + std::to_string(g) : name;
}

/// Resolve one fault-list entry against the circuit, mirroring the strict
/// resolution in fault_io.cpp but silently skipping malformed entries —
/// lint_fault_list already diagnoses those (fault-unknown-net,
/// fault-bad-pin), and this pass only speaks about injectable faults.
FaultSpec resolve_entry(const FaultEntry& entry, const Netlist& nl,
                        const NetIndex& index) {
  const int g = index.resolve(entry.net);
  if (g < 0) return FaultSpec::none();
  switch (entry.kind) {
    case FaultEntry::Kind::kStuck:
      return FaultSpec::stuck_gate(g, entry.value);
    case FaultEntry::Kind::kPin:
      if (entry.pin < 0 ||
          static_cast<std::size_t>(entry.pin) >= nl.gate(g).fanins.size())
        return FaultSpec::none();
      return FaultSpec::stuck_pin(g, entry.pin, entry.value);
    case FaultEntry::Kind::kBridge: {
      const int g2 = index.resolve(entry.net2);
      if (g2 < 0 || g == g2) return FaultSpec::none();
      return entry.value ? FaultSpec::bridge_or(g, g2)
                         : FaultSpec::bridge_and(g, g2);
    }
  }
  return FaultSpec::none();
}

}  // namespace

void lint_static_analysis(const ScanCircuit& circuit,
                          const FaultListFile* faults, robust::RunGuard& guard,
                          LintReport& report) {
  const Netlist& nl = circuit.comb;
  if (!guard.tick()) {
    report.truncated = true;
    return;
  }
  const analysis::StaticAnalyzer analyzer(nl);
  const analysis::ImplicationEngine& engine = analyzer.engine();

  for (int g = 0; g < nl.num_gates(); ++g) {
    if (!guard.tick()) {
      report.truncated = true;
      return;
    }
    const GateType type = nl.gate(g).type;
    if (type == GateType::kConst0 || type == GateType::kConst1) continue;
    const signed char constant = engine.constant(g);
    if (constant >= 0) {
      report.add("net-constant",
                 "gate " + gate_label(nl, g) + " is statically stuck at " +
                     std::to_string(static_cast<int>(constant)),
                 "fold the constant through or remove the dead logic; every "
                 "fault needing the other value here is untestable",
                 {report.source, 0});
      continue;
    }
    if (type == GateType::kInput) continue;
    if (analyzer.observable(g) &&
        analyzer.classify(FaultSpec::stuck_gate(g, false)) ==
            analysis::FaultVerdict::kUnpropagatable &&
        analyzer.classify(FaultSpec::stuck_gate(g, true)) ==
            analysis::FaultVerdict::kUnpropagatable) {
      report.add("net-blocked-cone",
                 "gate " + gate_label(nl, g) +
                     " reaches an output structurally, but implied "
                     "side-input values block every dominator on the way",
                 "the cone is untestable logic; restructure or remove it",
                 {report.source, 0});
    }
  }

  if (faults == nullptr) return;
  const NetIndex index(nl);
  for (const FaultEntry& entry : faults->entries) {
    if (!guard.tick()) {
      report.truncated = true;
      return;
    }
    const FaultSpec spec = resolve_entry(entry, nl, index);
    if (spec.kind == FaultSpec::Kind::kNone) continue;
    if (spec.kind == FaultSpec::Kind::kStuckGate) {
      const GateType type = nl.gate(spec.gate).type;
      // fault-on-const already covers literal constant lines.
      if (type == GateType::kConst0 || type == GateType::kConst1) continue;
    }
    const analysis::FaultVerdict verdict = analyzer.classify(spec);
    if (verdict == analysis::FaultVerdict::kUnknown) continue;
    report.add("fault-static-redundant",
               describe_fault(nl, spec) + " is statically " +
                   analysis::fault_verdict_name(verdict) +
                   "; no test can detect it",
               "drop it from the list, or count it as proven redundant",
               {report.source, entry.line});
  }
}

}  // namespace fstg::lint
