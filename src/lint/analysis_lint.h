#pragma once

#include "base/robust/budget.h"
#include "fault/fault_io.h"
#include "lint/diagnostic.h"
#include "netlist/netlist.h"

namespace fstg::lint {

/// Static-implication analyses on a built full-scan circuit (the
/// src/analysis engine: constant propagation, learned implications, and
/// dominator-based propagation blocking):
///   net-constant            non-constant gate proven stuck at one value
///                           (beyond literal Const gates — conflict-driven
///                           learning folds reconvergent structures)
///   net-blocked-cone        structurally observable gate whose stuck-at
///                           faults are both statically unpropagatable:
///                           implied side-input values hold every dominator
///                           at its controlling value
/// With a fault list, additionally:
///   fault-static-redundant  listed fault proven untestable (unexcitable
///                           or unpropagatable) without any simulation
/// Budget exhaustion marks the report truncated and returns early, same
/// contract as the other passes.
void lint_static_analysis(const ScanCircuit& circuit,
                          const FaultListFile* faults, robust::RunGuard& guard,
                          LintReport& report);

}  // namespace fstg::lint
