#pragma once

#include "base/robust/budget.h"
#include "fault/fault_io.h"
#include "lint/diagnostic.h"
#include "netlist/netlist.h"

namespace fstg::lint {

/// Analyses of a symbolic fault list against the circuit it targets:
///   fault-circuit-mismatch   .circuit disagrees with the circuit's name
///   fault-unknown-net        net reference resolves to no gate
///   fault-bad-pin            pin index out of range for the gate
///   fault-on-const           stuck-at on a constant line (untestable)
///   fault-duplicate          entry resolves to an already-listed fault
///   fault-equivalent         entry gate-locally equivalent to another entry
///   fault-bridge-feedback    bridged lines lie on a structural path
///   fault-bridge-same-ffr    bridged lines share a fanout-free region
///   fault-bridge-shared-gate bridged lines feed the same gate
/// Error findings are the conditions `resolve_fault_list` throws on, plus
/// feedback bridges (the non-feedback bridge simulator would silently
/// produce invalid results for them); warnings are faults the simulator
/// accepts but that skew coverage statistics (duplicates) or violate the
/// paper's bridging conditions.
void lint_fault_list(const FaultListFile& file, const ScanCircuit& circuit,
                     robust::RunGuard& guard, LintReport& report);

}  // namespace fstg::lint
