#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace fstg::lint {

/// Severity of one lint finding. `kError` means the input violates an
/// assumption the pipeline depends on (it would be rejected, crash, or be
/// silently mis-simulated downstream); `kWarn` flags constructs that are
/// legal but hurt functional testability or indicate likely mistakes;
/// `kInfo` is advisory.
enum class Severity : int { kInfo = 0, kWarn = 1, kError = 2 };

const char* severity_name(Severity severity);
/// Parses "info"/"warn"/"error"; returns false on anything else.
bool parse_severity(std::string_view text, Severity* out);

/// Source location of a finding, pointing back into the KISS2 / BLIF /
/// fault-list text the analyzer ran on. `line` 0 means "whole input" (the
/// finding is a property of the machine/netlist, not one line).
struct SourceLoc {
  std::string file;  ///< as the user named it; empty for in-memory inputs
  int line = 0;
};

/// One diagnostic produced by a lint pass.
struct Finding {
  std::string rule;     ///< stable rule id, e.g. "fsm-unreachable-state"
  Severity severity = Severity::kWarn;
  std::string message;  ///< what is wrong, naming the offending object(s)
  std::string hint;     ///< fix-it suggestion; may be empty
  SourceLoc loc;
};

/// Catalog entry for one rule: its stable id, default severity, and a
/// one-line summary. The full catalog (with rationale and an example
/// finding per rule) is documented in docs/LINTING.md.
struct RuleInfo {
  const char* id;
  Severity severity;
  const char* summary;
};

/// Every rule the analyzers can emit, sorted by id. A finding's rule id is
/// always one of these; the JSON golden test enforces it.
const std::vector<RuleInfo>& rule_catalog();

/// Catalog entry by id; nullptr if unknown.
const RuleInfo* find_rule(std::string_view id);

/// Accumulated findings of one lint run. Analyzers append in pass order;
/// the run_lint_* entry points sort by (file, rule, line) before emission
/// (sort_findings), so reports are stable across pass reordering.
class LintReport {
 public:
  /// Append a finding using the catalog's default severity for `rule`.
  /// Unknown rule ids are an internal bug and throw.
  void add(std::string_view rule, std::string message, std::string hint = {},
           SourceLoc loc = {});
  /// Append with an explicit severity override.
  void add(std::string_view rule, Severity severity, std::string message,
           std::string hint = {}, SourceLoc loc = {});

  const std::vector<Finding>& findings() const { return findings_; }
  std::size_t size() const { return findings_.size(); }
  bool empty() const { return findings_.empty(); }

  std::size_t count(Severity severity) const;
  std::size_t errors() const { return count(Severity::kError); }
  std::size_t warnings() const { return count(Severity::kWarn); }
  std::size_t infos() const { return count(Severity::kInfo); }
  bool has_errors() const { return errors() > 0; }

  /// Findings whose rule id equals `rule`.
  std::size_t count_rule(std::string_view rule) const;

  /// The lint budget ran out before every analysis finished; the findings
  /// present are valid, the absence of a finding proves nothing.
  bool truncated = false;

  /// Name of the linted input ("lion", "design.blif"); lands in the JSON.
  std::string source;

  /// Stable-sort findings by (file, rule, line) — the emission order of
  /// every run_lint_* entry point, so diffs between runs line up even when
  /// analyzer pass order changes. Ties keep analyzer emission order.
  void sort_findings();

  void merge(LintReport&& other);

 private:
  std::vector<Finding> findings_;
};

/// Human-readable rendering, one finding per line:
///   design.blif:12: error: [net-multiple-drivers] net n7 is driven by ...
///       hint: ...
/// followed by a `N error(s), M warning(s), K info(s)` summary line.
std::string report_to_text(const LintReport& report);

/// Schema `fstg.lint.v1` JSON (schemas/fstg_lint.schema.json). Validated
/// by obs::validate_lint_json — the same writer/validator pairing as the
/// metrics and trace formats.
std::string report_to_json(const LintReport& report);

/// Bump `lint.findings.<rule>` counters (one per finding), `lint.errors` /
/// `lint.warnings` totals, and `lint.truncated` when the budget cut the
/// run short. Call once per completed report.
void record_lint_metrics(const LintReport& report);

/// Eagerly register `lint.runs`/`lint.errors`/`lint.warnings`/
/// `lint.truncated` and one `lint.findings.<rule>` counter per catalog
/// rule, so metrics scrapes expose the full rule catalog (at zero) before
/// the first lint run.
void register_lint_counters();

}  // namespace fstg::lint
