#include "lint/fault_lint.h"

#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "base/bitvec.h"
#include "fault/fault.h"
#include "netlist/reach.h"

namespace fstg::lint {

namespace {

/// Root of a gate's fanout-free region: follow the single-fanout chain
/// toward the outputs until a stem (fanout > 1), a primary output, or a
/// sink. Two lines with the same root lie in the same FFR.
int ffr_root(int g, const std::vector<std::vector<int>>& fanouts,
             const BitVec& is_output, std::vector<int>& memo) {
  std::vector<int> path;
  while (memo[static_cast<std::size_t>(g)] < 0) {
    if (is_output.test(static_cast<std::size_t>(g)) ||
        fanouts[static_cast<std::size_t>(g)].size() != 1) {
      memo[static_cast<std::size_t>(g)] = g;
      break;
    }
    path.push_back(g);
    g = fanouts[static_cast<std::size_t>(g)][0];
  }
  const int root = memo[static_cast<std::size_t>(g)];
  for (int p : path) memo[static_cast<std::size_t>(p)] = root;
  return root;
}

/// Canonical duplicate-detection key; bridge endpoints are unordered.
std::tuple<int, int, int, int> fault_key(const FaultSpec& spec) {
  int a = spec.gate;
  int b = spec.gate2_or_pin;
  if (spec.kind == FaultSpec::Kind::kBridge && b < a) std::swap(a, b);
  return {static_cast<int>(spec.kind), a, b, spec.value ? 1 : 0};
}

/// The stem fault a pin fault collapses onto under the gate-local
/// equivalence rules of enumerate_stuck_at, if any: a controlling-value
/// pin (AND/NAND s-a-0, OR/NOR s-a-1) forces the output, and unary gates
/// propagate the pin fault directly. Returns kNone if the pin fault does
/// not collapse.
FaultSpec collapsed_stem(const Netlist& nl, const FaultSpec& pin_fault,
                         const std::vector<std::vector<int>>& fanouts) {
  const Gate& gate = nl.gate(pin_fault.gate);
  const bool value = pin_fault.value;
  switch (gate.type) {
    case GateType::kAnd:
      if (!value) return FaultSpec::stuck_gate(pin_fault.gate, false);
      break;
    case GateType::kNand:
      if (!value) return FaultSpec::stuck_gate(pin_fault.gate, true);
      break;
    case GateType::kOr:
      if (value) return FaultSpec::stuck_gate(pin_fault.gate, true);
      break;
    case GateType::kNor:
      if (value) return FaultSpec::stuck_gate(pin_fault.gate, false);
      break;
    case GateType::kBuf:
      return FaultSpec::stuck_gate(pin_fault.gate, value);
    case GateType::kNot:
      return FaultSpec::stuck_gate(pin_fault.gate, !value);
    default:
      break;
  }
  // A branch on a single-fanout line is the same fault as its stem.
  const int driver = gate.fanins[static_cast<std::size_t>(pin_fault.gate2_or_pin)];
  if (fanouts[static_cast<std::size_t>(driver)].size() <= 1)
    return FaultSpec::stuck_gate(driver, value);
  return FaultSpec::none();
}

}  // namespace

void lint_fault_list(const FaultListFile& file, const ScanCircuit& circuit,
                     robust::RunGuard& guard, LintReport& report) {
  const Netlist& nl = circuit.comb;
  const NetIndex index(nl);

  if (!file.circuit.empty() && !circuit.name.empty() &&
      file.circuit != circuit.name) {
    report.add("fault-circuit-mismatch",
               ".circuit names " + file.circuit +
                   " but the target circuit is " + circuit.name,
               "regenerate the fault list for this circuit",
               {report.source, file.circuit_line});
  }

  const std::vector<std::vector<int>> fanouts = nl.fanouts();
  BitVec is_output(static_cast<std::size_t>(nl.num_gates()));
  for (int out : nl.outputs()) is_output.set(static_cast<std::size_t>(out));

  // Bridges need the structural-path oracle; skip those checks (and mark
  // the report truncated) if the budget cannot afford the matrix.
  bool has_bridge = false;
  for (const FaultEntry& entry : file.entries)
    if (entry.kind == FaultEntry::Kind::kBridge) has_bridge = true;
  std::vector<BitVec> reach;
  bool reach_ok = false;
  if (has_bridge) {
    robust::Result<std::vector<BitVec>> result =
        forward_reachability_guarded(nl, guard);
    if (result.is_ok()) {
      reach = result.take();
      reach_ok = true;
    } else {
      report.truncated = true;
    }
  }
  std::vector<int> ffr_memo(static_cast<std::size_t>(nl.num_gates()), -1);

  struct Resolved {
    FaultSpec spec;
    int line;
  };
  std::vector<Resolved> resolved;
  std::map<std::tuple<int, int, int, int>, int> first_line;

  for (const FaultEntry& entry : file.entries) {
    if (!guard.tick()) {
      report.truncated = true;
      return;
    }
    const int g = index.resolve(entry.net);
    if (g < 0) {
      report.add("fault-unknown-net",
                 "net " + entry.net + " matches no gate in " +
                     (circuit.name.empty() ? "the circuit" : circuit.name),
                 "use a gate name or a decimal gate id 0.." +
                     std::to_string(nl.num_gates() - 1),
                 {report.source, entry.line});
      continue;
    }
    FaultSpec spec = FaultSpec::none();
    switch (entry.kind) {
      case FaultEntry::Kind::kStuck: {
        spec = FaultSpec::stuck_gate(g, entry.value);
        const GateType type = nl.gate(g).type;
        if (type == GateType::kConst0 || type == GateType::kConst1) {
          report.add("fault-on-const",
                     describe_fault(nl, spec) +
                         " targets a constant line; the fault is either "
                         "undetectable or the constant itself",
                     "drop it — enumerate_stuck_at never emits it",
                     {report.source, entry.line});
        }
        break;
      }
      case FaultEntry::Kind::kPin: {
        const std::size_t fanins = nl.gate(g).fanins.size();
        if (entry.pin < 0 || static_cast<std::size_t>(entry.pin) >= fanins) {
          report.add("fault-bad-pin",
                     "gate " + entry.net + " has " + std::to_string(fanins) +
                         " input pin(s), pin " + std::to_string(entry.pin) +
                         " requested",
                     fanins == 0 ? "the gate is an input or constant; use a "
                                   "stem fault (sa0/sa1) instead"
                                 : "pin indices are 0-based",
                     {report.source, entry.line});
          continue;
        }
        spec = FaultSpec::stuck_pin(g, entry.pin, entry.value);
        break;
      }
      case FaultEntry::Kind::kBridge: {
        const int g2 = index.resolve(entry.net2);
        if (g2 < 0) {
          report.add("fault-unknown-net",
                     "net " + entry.net2 + " matches no gate in " +
                         (circuit.name.empty() ? "the circuit" : circuit.name),
                     "use a gate name or a decimal gate id 0.." +
                         std::to_string(nl.num_gates() - 1),
                     {report.source, entry.line});
          continue;
        }
        spec = entry.value ? FaultSpec::bridge_or(g, g2)
                           : FaultSpec::bridge_and(g, g2);
        if (g == g2) {
          report.add("fault-bridge-feedback",
                     "net " + entry.net + " is bridged with itself",
                     "a bridge needs two distinct lines",
                     {report.source, entry.line});
          continue;
        }
        if (reach_ok &&
            (reach[static_cast<std::size_t>(g)].test(
                 static_cast<std::size_t>(g2)) ||
             reach[static_cast<std::size_t>(g2)].test(
                 static_cast<std::size_t>(g)))) {
          report.add("fault-bridge-feedback",
                     describe_fault(nl, spec) +
                         ": a structural path connects the bridged lines, so "
                         "the bridge would create a feedback loop",
                     "the non-feedback bridge model cannot simulate it; "
                     "drop the pair (paper condition 3)",
                     {report.source, entry.line});
          continue;
        }
        if (ffr_root(g, fanouts, is_output, ffr_memo) ==
            ffr_root(g2, fanouts, is_output, ffr_memo)) {
          report.add("fault-bridge-same-ffr",
                     describe_fault(nl, spec) +
                         ": both lines lie in the same fanout-free region",
                     "the bridge is dominated by faults at the region's "
                     "stem; it adds no coverage information",
                     {report.source, entry.line});
        }
        for (int consumer : fanouts[static_cast<std::size_t>(g)]) {
          bool shared = false;
          for (int other : fanouts[static_cast<std::size_t>(g2)])
            if (other == consumer) shared = true;
          if (shared) {
            report.add("fault-bridge-shared-gate",
                       describe_fault(nl, spec) +
                           ": both lines feed gate " +
                           std::to_string(consumer) + " (paper condition 2)",
                       "pick lines that are inputs of different gates");
            break;
          }
        }
        break;
      }
    }
    const auto [it, inserted] = first_line.emplace(fault_key(spec), entry.line);
    if (!inserted) {
      report.add("fault-duplicate",
                 describe_fault(nl, spec) + " duplicates the entry at line " +
                     std::to_string(it->second),
                 "remove the duplicate; it would double-count in coverage",
                 {report.source, entry.line});
      continue;
    }
    resolved.push_back({spec, entry.line});
  }

  // fault-equivalent: a pin fault whose gate-local collapse target is also
  // in the list tests the same defect twice.
  for (const Resolved& r : resolved) {
    if (r.spec.kind != FaultSpec::Kind::kStuckPin) continue;
    const FaultSpec stem = collapsed_stem(nl, r.spec, fanouts);
    if (stem.kind == FaultSpec::Kind::kNone) continue;
    const auto it = first_line.find(fault_key(stem));
    if (it == first_line.end()) continue;
    report.add("fault-equivalent",
               describe_fault(nl, r.spec) + " is equivalent to " +
                   describe_fault(nl, stem) + " (line " +
                   std::to_string(it->second) + ")",
               "keep one of the two; collapsing would merge them",
               {report.source, r.line});
  }
}

}  // namespace fstg::lint
