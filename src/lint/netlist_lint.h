#pragma once

#include "base/robust/budget.h"
#include "lint/diagnostic.h"
#include "netlist/blif_reader.h"
#include "netlist/netlist.h"

namespace fstg::lint {

/// Structural analyses on the declaration-level BLIF model (the tolerant
/// `parse_blif_model` output, so malformed graphs can still be diagnosed):
///   net-comb-cycle        cyclic .names dependencies (SCC over blocks)
///   net-undriven          net consumed but never driven
///   net-multiple-drivers  net driven by more than one declaration
///   net-dangling          net driven but never consumed
/// These are exactly the malformations the strict `parse_blif` rejects;
/// the fuzz harness enforces that equivalence (no error finding <=> the
/// strict parser accepts).
void lint_blif_model(const BlifModel& model, robust::RunGuard& guard,
                     LintReport& report);

/// Analyses on a built full-scan circuit:
///   scan-chain-broken   comb port counts disagree with num_pi/po/sv
///   net-dead-cone       logic observable at no output (cross-checked
///                       against netlist/reach.cpp's forward reachability)
///   net-dangling        primary input that drives no output
///   scan-sv-unused      present-state variable that affects no output
///   scan-sv-constant    next-state function is a constant
void lint_scan_circuit(const ScanCircuit& circuit, robust::RunGuard& guard,
                       LintReport& report);

}  // namespace fstg::lint
