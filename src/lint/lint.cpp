#include "lint/lint.h"

#include "base/obs/trace.h"
#include "lint/analysis_lint.h"
#include "netlist/synth.h"
#include "netlist/verify.h"

namespace fstg::lint {

namespace {

/// Completed-table analyses are exhaustive in 2^(pi+sv) evaluations when
/// the table is read back from a netlist; keep that to interactive sizes.
constexpr int kMaxReadBackBits = 16;

void table_lint(const StateTable& table, const LintOptions& options,
                robust::RunGuard& guard, LintReport& report) {
  FsmLintOptions fsm_options;
  fsm_options.uio_max_length = options.uio_max_length;
  lint_state_table(table, fsm_options, guard, report);
}

}  // namespace

LintReport run_lint_kiss2(const Kiss2Fsm& fsm, const FaultListFile* faults,
                          const LintOptions& options) {
  obs::Span span("lint.kiss2", fsm.name);
  LintReport report;
  report.source = fsm.name;
  robust::RunGuard guard(options.budget, "lint.run");

  lint_fsm_symbolic(fsm, guard, report);
  const bool deterministic = report.count_rule("fsm-nondeterministic") == 0;

  if (options.check_table && deterministic && !report.truncated &&
      fsm.num_inputs >= 1 && fsm.num_inputs <= 20 && fsm.num_outputs >= 1 &&
      fsm.num_outputs <= 32) {
    // The specified machine itself, self-loop completed: lint speaks about
    // the source the user wrote, not about one particular encoding of it.
    table_lint(expand_fsm(fsm, FillPolicy::kSelfLoop), options, guard, report);
  }

  if (faults != nullptr && deterministic) {
    // Fault lists name implementation nets, so resolve them against the
    // same synthesis the pipeline would run.
    const SynthesisResult synth = synthesize_scan_circuit(fsm);
    lint_scan_circuit(synth.circuit, guard, report);
    lint_fault_list(*faults, synth.circuit, guard, report);
    lint_static_analysis(synth.circuit, faults, guard, report);
  }

  report.sort_findings();
  record_lint_metrics(report);
  return report;
}

LintReport run_lint_blif(const BlifModel& model, const std::string& source,
                         const FaultListFile* faults,
                         const LintOptions& options) {
  obs::Span span("lint.blif", source);
  LintReport report;
  report.source = source;
  robust::RunGuard guard(options.budget, "lint.run");

  lint_blif_model(model, guard, report);
  if (report.has_errors() || report.truncated) {
    // The strict parser would reject (or the structural pass is partial);
    // there is no circuit to analyze further.
    report.sort_findings();
    record_lint_metrics(report);
    return report;
  }

  const ScanCircuit circuit = parse_blif(model);
  lint_scan_circuit(circuit, guard, report);

  if (options.check_table && circuit.num_sv >= 1 && circuit.num_po >= 1 &&
      circuit.num_po <= 32 && circuit.num_pi >= 1 &&
      circuit.num_pi + circuit.num_sv <= kMaxReadBackBits) {
    table_lint(read_back_table(circuit), options, guard, report);
  }

  if (faults != nullptr) lint_fault_list(*faults, circuit, guard, report);
  lint_static_analysis(circuit, faults, guard, report);

  report.sort_findings();
  record_lint_metrics(report);
  return report;
}

}  // namespace fstg::lint
