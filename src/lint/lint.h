#pragma once

#include <string>

#include "base/robust/budget.h"
#include "fault/fault_io.h"
#include "kiss/kiss2.h"
#include "lint/diagnostic.h"
#include "lint/fault_lint.h"
#include "lint/fsm_lint.h"
#include "lint/netlist_lint.h"

namespace fstg::lint {

/// Options for one whole lint run (`fstg lint`, tests).
struct LintOptions {
  robust::Budget budget;  ///< envelope for the whole run (default unlimited)
  /// Run the table-based FSM analyses (equivalence, UIO existence). They
  /// need a completed table, so they are skipped for machines the checks
  /// below rule out or that have nondeterminism errors.
  bool check_table = true;
  int uio_max_length = 0;  ///< 0 = the machine's state_bits() (N_SV)
};

/// Lint a symbolic KISS2 machine: always the symbolic analyses; the
/// table-based ones on `expand_fsm(kSelfLoop)` when the machine is
/// deterministic and small enough to expand (inputs <= 20, outputs <= 32).
/// With `faults`, the machine is synthesized (the fault list refers to the
/// implementation's nets) and the fault analyses run against it.
LintReport run_lint_kiss2(const Kiss2Fsm& fsm, const FaultListFile* faults,
                          const LintOptions& options = {});

/// Lint a BLIF model: structural analyses first; if they found no errors
/// the strict parser is guaranteed to accept, and the circuit-level (and,
/// for small circuits, table-based) analyses run on the built circuit.
LintReport run_lint_blif(const BlifModel& model, const std::string& source,
                         const FaultListFile* faults,
                         const LintOptions& options = {});

}  // namespace fstg::lint
