#include "lint/diagnostic.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "base/error.h"
#include "base/obs/metrics.h"

namespace fstg::lint {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "?";
}

bool parse_severity(std::string_view text, Severity* out) {
  if (text == "info") { *out = Severity::kInfo; return true; }
  if (text == "warn") { *out = Severity::kWarn; return true; }
  if (text == "error") { *out = Severity::kError; return true; }
  return false;
}

const std::vector<RuleInfo>& rule_catalog() {
  // Sorted by id; find_rule binary-searches. docs/LINTING.md carries the
  // rationale and an example finding for every entry — keep the two lists
  // in sync (test_lint.cpp cross-checks the doc).
  static const std::vector<RuleInfo> kCatalog = {
      {"fault-bad-pin", Severity::kError,
       "pin fault references a pin index the gate does not have"},
      {"fault-bridge-feedback", Severity::kError,
       "bridged lines have a structural path between them (feedback bridge)"},
      {"fault-bridge-same-ffr", Severity::kWarn,
       "bridged lines lie in the same fanout-free region"},
      {"fault-bridge-shared-gate", Severity::kWarn,
       "bridged lines feed the same gate (paper condition 2 excludes this)"},
      {"fault-circuit-mismatch", Severity::kWarn,
       "fault list names a different circuit than the one being linted"},
      {"fault-duplicate", Severity::kWarn,
       "the same fault appears more than once in the list"},
      {"fault-equivalent", Severity::kInfo,
       "gate-local equivalence collapsing would merge this fault with "
       "another entry"},
      {"fault-on-const", Severity::kWarn,
       "stuck-at fault on a constant line is untestable"},
      {"fault-static-redundant", Severity::kWarn,
       "static implication analysis proves the fault untestable"},
      {"fault-unknown-net", Severity::kError,
       "fault references a net that does not exist in the circuit"},
      {"fsm-equivalent-states", Severity::kWarn,
       "two states are output-equivalent; neither can have a UIO"},
      {"fsm-incomplete", Severity::kWarn,
       "some (state, input) combinations are not covered by any row"},
      {"fsm-no-uio", Severity::kWarn,
       "state has no UIO of length <= N_SV; tests of its incoming "
       "transitions always end in a scan-out"},
      {"fsm-nondeterministic", Severity::kError,
       "overlapping rows give conflicting next state or output"},
      {"fsm-redundant-row", Severity::kWarn,
       "row is subsumed by an earlier row with the same next state and "
       "output"},
      {"fsm-unreachable-state", Severity::kWarn,
       "state cannot be reached from the reset state"},
      {"net-blocked-cone", Severity::kWarn,
       "structurally observable gate whose fault effects can never reach an "
       "output (implied side inputs block every dominator)"},
      {"net-comb-cycle", Severity::kError,
       "combinational cycle through .names blocks"},
      {"net-constant", Severity::kWarn,
       "non-constant gate is statically stuck at one value"},
      {"net-dangling", Severity::kWarn,
       "net is driven but feeds no gate, output, or latch"},
      {"net-dead-cone", Severity::kWarn,
       "gate is unobservable at every output or fed by no input"},
      {"net-multiple-drivers", Severity::kError,
       "net is driven by more than one source"},
      {"net-undriven", Severity::kError,
       "net is used but never driven by an input, latch, or .names block"},
      {"scan-chain-broken", Severity::kError,
       "combinational port counts disagree with the declared scan "
       "interface"},
      {"scan-sv-constant", Severity::kWarn,
       "next-state line is driven by a constant; the state variable can "
       "never toggle"},
      {"scan-sv-unused", Severity::kWarn,
       "present-state line drives no logic and no output"},
  };
  return kCatalog;
}

const RuleInfo* find_rule(std::string_view id) {
  const std::vector<RuleInfo>& catalog = rule_catalog();
  auto it = std::lower_bound(
      catalog.begin(), catalog.end(), id,
      [](const RuleInfo& a, std::string_view b) { return a.id < b; });
  if (it == catalog.end() || id != it->id) return nullptr;
  return &*it;
}

void LintReport::add(std::string_view rule, std::string message,
                     std::string hint, SourceLoc loc) {
  const RuleInfo* info = find_rule(rule);
  require(info != nullptr, "lint: unknown rule id " + std::string(rule));
  add(rule, info->severity, std::move(message), std::move(hint),
      std::move(loc));
}

void LintReport::add(std::string_view rule, Severity severity,
                     std::string message, std::string hint, SourceLoc loc) {
  require(find_rule(rule) != nullptr,
          "lint: unknown rule id " + std::string(rule));
  Finding f;
  f.rule = std::string(rule);
  f.severity = severity;
  f.message = std::move(message);
  f.hint = std::move(hint);
  f.loc = std::move(loc);
  findings_.push_back(std::move(f));
}

std::size_t LintReport::count(Severity severity) const {
  std::size_t n = 0;
  for (const Finding& f : findings_) n += f.severity == severity ? 1 : 0;
  return n;
}

std::size_t LintReport::count_rule(std::string_view rule) const {
  std::size_t n = 0;
  for (const Finding& f : findings_) n += f.rule == rule ? 1 : 0;
  return n;
}

void LintReport::sort_findings() {
  std::stable_sort(findings_.begin(), findings_.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.loc.file != b.loc.file) return a.loc.file < b.loc.file;
                     if (a.rule != b.rule) return a.rule < b.rule;
                     return a.loc.line < b.loc.line;
                   });
}

void LintReport::merge(LintReport&& other) {
  truncated = truncated || other.truncated;
  findings_.reserve(findings_.size() + other.findings_.size());
  for (Finding& f : other.findings_) findings_.push_back(std::move(f));
  other.findings_.clear();
}

std::string report_to_text(const LintReport& report) {
  std::ostringstream os;
  for (const Finding& f : report.findings()) {
    const std::string& file =
        !f.loc.file.empty() ? f.loc.file
                            : (!report.source.empty() ? report.source
                                                      : std::string("<input>"));
    os << file;
    if (f.loc.line > 0) os << ":" << f.loc.line;
    os << ": " << severity_name(f.severity) << ": [" << f.rule << "] "
       << f.message << "\n";
    if (!f.hint.empty()) os << "    hint: " << f.hint << "\n";
  }
  os << report.errors() << " error(s), " << report.warnings()
     << " warning(s), " << report.infos() << " info(s)";
  if (report.truncated) os << " (truncated: lint budget exhausted)";
  os << "\n";
  return os.str();
}

namespace {

/// Minimal JSON string escaping, mirroring the obs writers.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string report_to_json(const LintReport& report) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"fstg.lint.v1\",\n"
     << "  \"source\": \"" << json_escape(report.source) << "\",\n"
     << "  \"errors\": " << report.errors() << ",\n"
     << "  \"warnings\": " << report.warnings() << ",\n"
     << "  \"infos\": " << report.infos() << ",\n"
     << "  \"truncated\": " << (report.truncated ? "true" : "false") << ",\n"
     << "  \"findings\": [\n";
  const std::vector<Finding>& findings = report.findings();
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "    {\"rule\": \"" << json_escape(f.rule) << "\", \"severity\": \""
       << severity_name(f.severity) << "\", \"message\": \""
       << json_escape(f.message) << "\", \"hint\": \"" << json_escape(f.hint)
       << "\", \"file\": \"" << json_escape(f.loc.file)
       << "\", \"line\": " << f.loc.line << "}"
       << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

void record_lint_metrics(const LintReport& report) {
  static const obs::Counter c_runs = obs::counter("lint.runs");
  static const obs::Counter c_errors = obs::counter("lint.errors");
  static const obs::Counter c_warnings = obs::counter("lint.warnings");
  static const obs::Counter c_truncated = obs::counter("lint.truncated");
  c_runs.inc();
  c_errors.add(report.errors());
  c_warnings.add(report.warnings());
  if (report.truncated) c_truncated.inc();
  for (const Finding& f : report.findings())
    obs::counter("lint.findings." + f.rule).inc();
}

void register_lint_counters() {
  obs::counter("lint.runs");
  obs::counter("lint.errors");
  obs::counter("lint.warnings");
  obs::counter("lint.truncated");
  for (const RuleInfo& rule : rule_catalog())
    obs::counter(std::string("lint.findings.") + rule.id);
}

}  // namespace fstg::lint
