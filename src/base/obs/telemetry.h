#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/obs/metrics.h"
#include "base/obs/trace.h"

namespace fstg::obs {

/// --- Continuous telemetry -------------------------------------------------
///
/// PR 3's metrics and traces are only written at process exit; a running
/// campaign is a black box. This layer adds the live side: a background
/// exporter thread that periodically snapshots the metrics registry and
/// atomically publishes a `fstg.telemetry.v1` JSON file (the --telemetry-out
/// flag), plus the stage bookkeeping the exporter derives progress and ETA
/// from. Every publish goes through store::atomic_write_file, so a reader —
/// `watch cat`, a scrape loop, the future `fstg serve` daemon — always sees
/// a complete, schema-valid document, never a torn one, even if the process
/// is killed mid-interval.
///
/// Progress is read from the registry itself: `fault_sim.batches` (done) vs
/// `fault_sim.batches_expected` (scheduled), both monotone counters, so
/// successive snapshots can never report progress going backwards. A stall
/// watchdog fingerprints every non-`telemetry.*` counter each tick; when no
/// counter advances for `stall_window_ms` it bumps `telemetry.stall` and
/// logs one warning — exactly once per stall, re-armed by the next advance.

/// Accumulated wall time of one named pipeline stage across the process
/// (all StageScope lifetimes with that name, summed).
struct StageTiming {
  std::string stage;
  double ms = 0.0;
  std::uint64_t runs = 0;
};

/// RAII pipeline-stage marker. Owns an obs::Span of the same name (so the
/// trace timeline and the telemetry file agree on stage boundaries), tracks
/// the process-wide "currently running stage" shown in the live telemetry
/// file, and folds its elapsed wall time into the stage-timing table that
/// the run ledger records at exit. Nesting is fine (the innermost live
/// scope wins the "current stage" slot); concurrent scopes on suite workers
/// are last-begun-wins, which is the honest answer for a shared live view.
class StageScope {
 public:
  explicit StageScope(const char* stage);
  StageScope(const char* stage, std::string detail);
  ~StageScope();

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  const char* stage_;
  std::uint64_t token_ = 0;
  std::uint64_t start_us_ = 0;
  Span span_;
};

/// Snapshot of the per-stage wall-time table, stage-name-sorted.
std::vector<StageTiming> stage_timings();
/// Test-only, like reset_metrics: zero the table (names stay out of it).
void reset_stage_timings();

/// The most recently begun still-active stage, or active == false.
struct ActiveStage {
  std::string stage;
  double elapsed_ms = 0.0;
  bool active = false;
};
ActiveStage current_stage();

struct TelemetryOptions {
  std::string path;            ///< live file destination (required)
  int interval_ms = 250;       ///< publish period
  int stall_window_ms = 5000;  ///< no-progress window before the watchdog fires
  /// ETA lookback: the throughput behind eta_ms is measured over the last
  /// eta_window_ms, not the exporter's lifetime — a warm-cache burst that
  /// finishes most batches in the first tick must stop flattering the rate
  /// once it leaves the window. Clamped to at least interval_ms.
  int eta_window_ms = 5000;
};

/// One rendered tick of the live file. Exposed (with render/take below) so
/// tests can exercise the derivation without a thread.
struct TelemetrySnapshot {
  std::uint64_t pid = 0;
  std::uint64_t seq = 0;        ///< publish number, starts at 0
  double uptime_ms = 0.0;       ///< monotonic since exporter start
  int interval_ms = 0;
  std::string stage;            ///< current pipeline stage ("" = idle)
  double stage_elapsed_ms = 0.0;
  std::uint64_t progress_done = 0;   ///< fault_sim.batches
  std::uint64_t progress_total = 0;  ///< fault_sim.batches_expected (0 = unknown)
  double eta_ms = -1.0;              ///< -1 = unknown (no progress in the window)
  std::uint64_t faults_simulated = 0;
  std::uint64_t cycles = 0;      ///< scan.cycles_{skipped,overlay,full} summed
  std::uint64_t cache_hits = 0;  ///< cache.*.hit counters summed
  bool stalled = false;
  std::uint64_t stalls = 0;
  MetricsSnapshot metrics;  ///< full counter/gauge dump (histograms omitted)
};

/// Derive one snapshot from the live registry. `seq`/`uptime_ms`/`stalled`/
/// `stalls` are the exporter's to fill; this fills everything the registry
/// and the stage table know.
TelemetrySnapshot take_telemetry_snapshot();

/// Render as schema `fstg.telemetry.v1` (schemas/fstg_telemetry.schema.json).
std::string telemetry_to_json(const TelemetrySnapshot& snap);

/// The background exporter. start() publishes an immediate first snapshot
/// (so even a run shorter than one interval leaves a valid file), then one
/// every interval; stop() joins the thread and publishes a final snapshot,
/// so the file always ends reflecting the finished run. Publish failures
/// are counted (telemetry.write_errors) and logged once — a full disk must
/// never take the run down.
class TelemetryExporter {
 public:
  explicit TelemetryExporter(TelemetryOptions options);
  ~TelemetryExporter();  ///< stops if still running

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// False (with *error) if the first snapshot cannot be written — the
  /// destination is checked up front so a bad --telemetry-out path warns
  /// at startup, not silently per tick.
  bool start(std::string* error);
  void stop();
  bool running() const;

  const TelemetryOptions& options() const { return options_; }
  /// Observable progress of the exporter itself (tests, --check-overhead).
  std::uint64_t ticks() const;
  std::uint64_t stalls() const;

  /// Test hook: wake the exporter thread without stopping it — a forced
  /// spurious condition-variable wakeup. The interval_ms cadence must hold
  /// regardless (the regression test pokes this in a tight loop and checks
  /// that no early publish happens).
  void wake_for_test();

 private:
  void run();
  bool publish();

  TelemetryOptions options_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Process-global exporter backing the --telemetry-out flag (one per tool
/// process, like the global store). start replaces nothing if one is
/// already running; stop is idempotent.
bool start_global_telemetry(const TelemetryOptions& options,
                            std::string* error);
void stop_global_telemetry();

}  // namespace fstg::obs
