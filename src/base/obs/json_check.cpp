#include "base/obs/json_check.h"

#include <cctype>
#include <cstring>

namespace fstg::obs {

namespace {

/// Recursive-descent walker over one JSON document. Collects top-level
/// object fields; array element bodies are captured as raw text so the
/// caller can re-parse the arrays it cares about with another walker.
struct Walker {
  /// Nesting cap: the documents this parser reads are shallow (≤4 levels),
  /// but the serve path feeds it untrusted socket bytes — unbounded
  /// recursion on `[[[[...` would overflow the stack.
  static constexpr int kMaxDepth = 64;

  const std::string& text;
  std::size_t pos = 0;
  int depth = 0;
  std::string error;
  std::vector<std::pair<std::string, std::string>>* array_bodies = nullptr;

  explicit Walker(const std::string& t) : text(t) {}

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }
  bool fail(const std::string& what) {
    if (error.empty()) error = what + " at byte " + std::to_string(pos);
    return false;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text.compare(pos, n, lit) != 0) return fail("expected literal");
    pos += n;
    return true;
  }
  bool string(std::string* out) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    std::string s;
    while (pos < text.size() && text[pos] != '"') {
      const char c = text[pos];
      if (c != '\\') {
        s.push_back(c);
        ++pos;
        continue;
      }
      ++pos;  // consume the backslash
      if (pos >= text.size()) return fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': s.push_back('"'); break;
        case '\\': s.push_back('\\'); break;
        case '/': s.push_back('/'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'n': s.push_back('\n'); break;
        case 'r': s.push_back('\r'); break;
        case 't': s.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text[pos + static_cast<std::size_t>(k)];
            unsigned digit = 0;
            if (h >= '0' && h <= '9') digit = static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              digit = static_cast<unsigned>(h - 'a') + 10;
            else if (h >= 'A' && h <= 'F')
              digit = static_cast<unsigned>(h - 'A') + 10;
            else return fail("bad \\u escape digit");
            cp = cp * 16 + digit;
          }
          pos += 4;
          // Surrogate pairs never appear in this codebase's writers (they
          // escape control bytes only); reject rather than mis-decode.
          if (cp >= 0xD800 && cp <= 0xDFFF)
            return fail("unsupported surrogate \\u escape");
          if (cp < 0x80) {
            s.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    if (pos >= text.size()) return fail("unterminated string");
    ++pos;
    if (out) *out = std::move(s);
    return true;
  }
  bool number(double* out) {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            std::strchr("+-.eE", text[pos])))
      ++pos;
    if (pos == start) return fail("expected number");
    try {
      *out = std::stod(text.substr(start, pos - start));
    } catch (...) {
      return fail("unparsable number");
    }
    return true;
  }

  /// Parse any value; `*kind`/`*sval`/`*nval` report what it was. When
  /// `key` is non-empty and the value is an array, element bodies are
  /// captured into array_bodies under that key.
  bool value(char* kind, std::string* sval, double* nval,
             const std::string& key) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end");
    const char c = text[pos];
    if (c == '"') {
      *kind = 's';
      return string(sval);
    }
    if (c == '{') {
      *kind = 'o';
      if (++depth > kMaxDepth) return fail("nesting too deep");
      std::vector<JsonField> ignored;
      const bool ok = object(&ignored);
      --depth;
      return ok;
    }
    if (c == '[') {
      *kind = 'a';
      if (++depth > kMaxDepth) return fail("nesting too deep");
      ++pos;
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        --depth;
        return true;
      }
      for (;;) {
        skip_ws();
        const std::size_t start = pos;
        char inner = 0;
        std::string is;
        double in = 0.0;
        if (!value(&inner, &is, &in, std::string())) return false;
        if (array_bodies && !key.empty())
          array_bodies->emplace_back(key, text.substr(start, pos - start));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          --depth;
          return true;
        }
        return fail("expected , or ] in array");
      }
    }
    if (c == 't') {
      *kind = 'b';
      *nval = 1.0;  // booleans surface through nval (1 true, 0 false)
      return literal("true");
    }
    if (c == 'f') {
      *kind = 'b';
      *nval = 0.0;
      return literal("false");
    }
    if (c == 'n') {
      *kind = '0';
      return literal("null");
    }
    *kind = 'n';
    return number(nval);
  }

  bool object(std::vector<JsonField>* fields) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '{') return fail("expected object");
    ++pos;
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    for (;;) {
      JsonField field;
      if (!string(&field.key)) return false;
      skip_ws();
      if (pos >= text.size() || text[pos] != ':') return fail("expected :");
      ++pos;
      if (!value(&field.kind, &field.sval, &field.nval, field.key))
        return false;
      fields->push_back(std::move(field));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      return fail("expected , or } in object");
    }
  }
};

/// Every element captured under `key`, in order.
std::vector<std::string> bodies_of(
    const std::vector<std::pair<std::string, std::string>>& array_bodies,
    const std::string& key) {
  std::vector<std::string> out;
  for (const auto& [k, body] : array_bodies)
    if (k == key) out.push_back(body);
  return out;
}

/// Validate that every record in `bodies` is an object carrying all of
/// `required` (key, kind) fields. `what` names the array in errors.
bool validate_records(
    const std::vector<std::string>& bodies,
    const std::vector<std::pair<const char*, char>>& required,
    const char* what, std::string* error) {
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    std::vector<JsonField> fields;
    if (!json_parse_object(bodies[i], &fields, nullptr, error)) {
      *error = std::string(what) + "[" + std::to_string(i) + "]: " + *error;
      return false;
    }
    for (const auto& [key, kind] : required) {
      if (!json_has_field(fields, key, kind)) {
        *error = std::string(what) + "[" + std::to_string(i) +
                 "]: missing or mistyped field " + key;
        return false;
      }
    }
  }
  return true;
}

}  // namespace

bool json_parse_object(
    const std::string& text, std::vector<JsonField>* fields,
    std::vector<std::pair<std::string, std::string>>* array_bodies,
    std::string* error) {
  Walker w(text);
  w.array_bodies = array_bodies;
  if (!w.object(fields)) {
    if (error) *error = w.error;
    return false;
  }
  return true;
}

bool json_has_field(const std::vector<JsonField>& fields,
                    const std::string& key, char kind) {
  const JsonField* f = json_find_field(fields, key);
  return f != nullptr && f->kind == kind;
}

const JsonField* json_find_field(const std::vector<JsonField>& fields,
                                 const std::string& key) {
  for (const JsonField& f : fields)
    if (f.key == key) return &f;
  return nullptr;
}

bool validate_metrics_json(const std::string& text, std::string* error) {
  std::vector<JsonField> top;
  std::vector<std::pair<std::string, std::string>> arrays;
  if (!json_parse_object(text, &top, &arrays, error)) return false;

  const JsonField* schema = json_find_field(top, "schema");
  if (schema == nullptr || schema->kind != 's' ||
      schema->sval != "fstg.metrics.v1") {
    *error = "missing or wrong schema tag (want fstg.metrics.v1)";
    return false;
  }
  for (const char* key : {"counters", "gauges", "histograms"}) {
    if (!json_has_field(top, key, 'a')) {
      *error = std::string("missing or mistyped top-level array ") + key;
      return false;
    }
  }
  const std::vector<std::pair<const char*, char>> scalar = {{"name", 's'},
                                                            {"value", 'n'}};
  if (!validate_records(bodies_of(arrays, "counters"), scalar, "counters",
                        error))
    return false;
  if (!validate_records(bodies_of(arrays, "gauges"), scalar, "gauges", error))
    return false;
  const std::vector<std::pair<const char*, char>> hist = {
      {"name", 's'}, {"count", 'n'}, {"sum", 'n'}, {"buckets", 'a'}};
  return validate_records(bodies_of(arrays, "histograms"), hist, "histograms",
                          error);
}

bool validate_lint_json(const std::string& text, std::string* error) {
  std::vector<JsonField> top;
  std::vector<std::pair<std::string, std::string>> arrays;
  if (!json_parse_object(text, &top, &arrays, error)) return false;

  const JsonField* schema = json_find_field(top, "schema");
  if (schema == nullptr || schema->kind != 's' ||
      schema->sval != "fstg.lint.v1") {
    *error = "missing or wrong schema tag (want fstg.lint.v1)";
    return false;
  }
  if (!json_has_field(top, "source", 's')) {
    *error = "missing or mistyped source string";
    return false;
  }
  for (const char* key : {"errors", "warnings", "infos"}) {
    if (!json_has_field(top, key, 'n')) {
      *error = std::string("missing or mistyped total ") + key;
      return false;
    }
  }
  if (!json_has_field(top, "truncated", 'b')) {
    *error = "missing or mistyped truncated flag";
    return false;
  }
  if (!json_has_field(top, "findings", 'a')) {
    *error = "missing or mistyped findings array";
    return false;
  }

  // Per-finding structure, plus a severity tally cross-checked against the
  // header totals (a writer that miscounts fails its own validation).
  double errors = 0, warnings = 0, infos = 0;
  const std::vector<std::string> findings = bodies_of(arrays, "findings");
  for (std::size_t i = 0; i < findings.size(); ++i) {
    std::vector<JsonField> fields;
    if (!json_parse_object(findings[i], &fields, nullptr, error)) {
      *error = "findings[" + std::to_string(i) + "]: " + *error;
      return false;
    }
    for (const auto& [key, kind] : std::vector<std::pair<const char*, char>>{
             {"rule", 's'}, {"severity", 's'}, {"message", 's'},
             {"hint", 's'}, {"file", 's'}, {"line", 'n'}}) {
      if (!json_has_field(fields, key, kind)) {
        *error = "findings[" + std::to_string(i) +
                 "]: missing or mistyped field " + key;
        return false;
      }
    }
    const std::string& sev = json_find_field(fields, "severity")->sval;
    if (sev == "error") ++errors;
    else if (sev == "warn") ++warnings;
    else if (sev == "info") ++infos;
    else {
      *error = "findings[" + std::to_string(i) + "]: bad severity " + sev;
      return false;
    }
  }
  if (json_find_field(top, "errors")->nval != errors ||
      json_find_field(top, "warnings")->nval != warnings ||
      json_find_field(top, "infos")->nval != infos) {
    *error = "severity totals disagree with the findings array";
    return false;
  }
  return true;
}

bool validate_trace_json(const std::string& text, std::string* error) {
  std::vector<JsonField> top;
  std::vector<std::pair<std::string, std::string>> arrays;
  if (!json_parse_object(text, &top, &arrays, error)) return false;

  if (!json_has_field(top, "traceEvents", 'a')) {
    *error = "missing or mistyped traceEvents array";
    return false;
  }
  const std::vector<std::string> events = bodies_of(arrays, "traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::vector<JsonField> fields;
    if (!json_parse_object(events[i], &fields, nullptr, error)) {
      *error = "traceEvents[" + std::to_string(i) + "]: " + *error;
      return false;
    }
    for (const auto& [key, kind] :
         std::vector<std::pair<const char*, char>>{
             {"name", 's'}, {"ph", 's'}, {"ts", 'n'}, {"pid", 'n'},
             {"tid", 'n'}}) {
      if (!json_has_field(fields, key, kind)) {
        *error = "traceEvents[" + std::to_string(i) +
                 "]: missing or mistyped field " + key;
        return false;
      }
    }
    const JsonField* ph = json_find_field(fields, "ph");
    if (ph->sval == "X" && !json_has_field(fields, "dur", 'n')) {
      *error = "traceEvents[" + std::to_string(i) +
               "]: complete (X) event without dur";
      return false;
    }
  }
  return true;
}

bool validate_cache_meta_json(const std::string& text, std::string* error) {
  std::vector<JsonField> top;
  std::vector<std::pair<std::string, std::string>> arrays;
  if (!json_parse_object(text, &top, &arrays, error)) return false;

  const JsonField* schema = json_find_field(top, "schema");
  if (schema == nullptr || schema->kind != 's' ||
      schema->sval != "fstg.cache_meta.v1") {
    *error = "missing or wrong schema tag (want fstg.cache_meta.v1)";
    return false;
  }
  for (const char* key :
       {"store_version", "blobs", "bytes", "corrupt", "tmp_files",
        "checkpoints"}) {
    if (!json_has_field(top, key, 'n')) {
      *error = std::string("missing or mistyped total ") + key;
      return false;
    }
  }
  if (!json_has_field(top, "types", 'a')) {
    *error = "missing or mistyped types array";
    return false;
  }
  const std::vector<std::pair<const char*, char>> type_rec = {
      {"tag", 's'}, {"blobs", 'n'}, {"bytes", 'n'}};
  return validate_records(bodies_of(arrays, "types"), type_rec, "types",
                          error);
}

bool validate_telemetry_json(const std::string& text, std::string* error) {
  std::vector<JsonField> top;
  std::vector<std::pair<std::string, std::string>> arrays;
  if (!json_parse_object(text, &top, &arrays, error)) return false;

  const JsonField* schema = json_find_field(top, "schema");
  if (schema == nullptr || schema->kind != 's' ||
      schema->sval != "fstg.telemetry.v1") {
    *error = "missing or wrong schema tag (want fstg.telemetry.v1)";
    return false;
  }
  for (const char* key :
       {"pid", "seq", "uptime_ms", "interval_ms", "stage_elapsed_ms",
        "progress_done", "progress_total", "eta_ms", "faults_simulated",
        "cycles", "cache_hits", "stalls"}) {
    if (!json_has_field(top, key, 'n')) {
      *error = std::string("missing or mistyped number ") + key;
      return false;
    }
  }
  for (const char* key : {"stage", "progress_unit"}) {
    if (!json_has_field(top, key, 's')) {
      *error = std::string("missing or mistyped string ") + key;
      return false;
    }
  }
  if (!json_has_field(top, "stalled", 'b')) {
    *error = "missing or mistyped stalled flag";
    return false;
  }
  for (const char* key : {"counters", "gauges"}) {
    if (!json_has_field(top, key, 'a')) {
      *error = std::string("missing or mistyped array ") + key;
      return false;
    }
  }
  // done <= total whenever a total is known: the live file must never claim
  // more work finished than was scheduled.
  const double done = json_find_field(top, "progress_done")->nval;
  const double total = json_find_field(top, "progress_total")->nval;
  if (total > 0 && done > total) {
    *error = "progress_done exceeds progress_total";
    return false;
  }
  const std::vector<std::pair<const char*, char>> scalar = {{"name", 's'},
                                                            {"value", 'n'}};
  if (!validate_records(bodies_of(arrays, "counters"), scalar, "counters",
                        error))
    return false;
  return validate_records(bodies_of(arrays, "gauges"), scalar, "gauges",
                          error);
}

bool validate_run_record_json(const std::string& text, std::string* error) {
  std::vector<JsonField> top;
  std::vector<std::pair<std::string, std::string>> arrays;
  if (!json_parse_object(text, &top, &arrays, error)) return false;

  const JsonField* schema = json_find_field(top, "schema");
  if (schema == nullptr || schema->kind != 's' ||
      schema->sval != "fstg.run.v1") {
    *error = "missing or wrong schema tag (want fstg.run.v1)";
    return false;
  }
  for (const char* key : {"tool", "command", "circuit", "config_hash"}) {
    if (!json_has_field(top, key, 's')) {
      *error = std::string("missing or mistyped string ") + key;
      return false;
    }
  }
  for (const char* key : {"run", "exit_code", "wall_ms", "budget_trips"}) {
    if (!json_has_field(top, key, 'n')) {
      *error = std::string("missing or mistyped number ") + key;
      return false;
    }
  }
  for (const char* key : {"stages", "counters"}) {
    if (!json_has_field(top, key, 'a')) {
      *error = std::string("missing or mistyped array ") + key;
      return false;
    }
  }
  // config_hash is a fixed-width hex string, not a JSON number: a 64-bit
  // hash cannot round-trip through a double.
  const std::string& hash = json_find_field(top, "config_hash")->sval;
  if (hash.size() != 16 ||
      hash.find_first_not_of("0123456789abcdef") != std::string::npos) {
    *error = "config_hash is not a 16-digit lowercase hex string";
    return false;
  }
  const std::vector<std::pair<const char*, char>> stage_rec = {{"stage", 's'},
                                                               {"ms", 'n'}};
  if (!validate_records(bodies_of(arrays, "stages"), stage_rec, "stages",
                        error))
    return false;
  const std::vector<std::pair<const char*, char>> counter_rec = {
      {"name", 's'}, {"value", 'n'}};
  return validate_records(bodies_of(arrays, "counters"), counter_rec,
                          "counters", error);
}

bool validate_report_json(const std::string& text, std::string* error) {
  std::vector<JsonField> top;
  std::vector<std::pair<std::string, std::string>> arrays;
  if (!json_parse_object(text, &top, &arrays, error)) return false;

  const JsonField* schema = json_find_field(top, "schema");
  if (schema == nullptr || schema->kind != 's' ||
      schema->sval != "fstg.report.v1") {
    *error = "missing or wrong schema tag (want fstg.report.v1)";
    return false;
  }
  if (!json_has_field(top, "ledger", 's')) {
    *error = "missing or mistyped ledger string";
    return false;
  }
  for (const char* key : {"runs", "threshold_pct", "regressions"}) {
    if (!json_has_field(top, key, 'n')) {
      *error = std::string("missing or mistyped number ") + key;
      return false;
    }
  }
  if (!json_has_field(top, "regressed", 'b')) {
    *error = "missing or mistyped regressed flag";
    return false;
  }
  for (const char* key : {"watched", "circuits"}) {
    if (!json_has_field(top, key, 'a')) {
      *error = std::string("missing or mistyped array ") + key;
      return false;
    }
  }
  // Each circuit record is itself an object with a stages array; re-parse
  // each element with its own walker so its stages are checked in place.
  const std::vector<std::string> circuits = bodies_of(arrays, "circuits");
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    std::vector<JsonField> fields;
    std::vector<std::pair<std::string, std::string>> inner;
    if (!json_parse_object(circuits[i], &fields, &inner, error)) {
      *error = "circuits[" + std::to_string(i) + "]: " + *error;
      return false;
    }
    if (!json_has_field(fields, "circuit", 's') ||
        !json_has_field(fields, "runs", 'n') ||
        !json_has_field(fields, "baseline_run", 'n') ||
        !json_has_field(fields, "latest_run", 'n') ||
        !json_has_field(fields, "stages", 'a')) {
      *error = "circuits[" + std::to_string(i) +
               "]: missing or mistyped circuit/runs/baseline_run/latest_run/"
               "stages";
      return false;
    }
    const std::vector<std::pair<const char*, char>> stage_rec = {
        {"stage", 's'},      {"baseline_ms", 'n'}, {"latest_ms", 'n'},
        {"delta_pct", 'n'},  {"watched", 'b'},     {"regressed", 'b'}};
    if (!validate_records(bodies_of(inner, "stages"), stage_rec,
                          ("circuits[" + std::to_string(i) + "].stages").c_str(),
                          error))
      return false;
  }
  return true;
}

bool validate_serve_request_json(const std::string& text, std::string* error) {
  std::vector<JsonField> top;
  if (!json_parse_object(text, &top, nullptr, error)) return false;

  const JsonField* schema = json_find_field(top, "schema");
  if (schema == nullptr || schema->kind != 's' ||
      schema->sval != "fstg.serve_request.v1") {
    *error = "missing or wrong schema tag (want fstg.serve_request.v1)";
    return false;
  }
  const JsonField* type = json_find_field(top, "type");
  if (type == nullptr || type->kind != 's') {
    *error = "missing or mistyped type string";
    return false;
  }
  const std::string& t = type->sval;
  if (t != "gen" && t != "sim" && t != "lint" && t != "metrics" &&
      t != "ping" && t != "shutdown") {
    *error = "bad request type " + t +
             " (want gen|sim|lint|metrics|ping|shutdown)";
    return false;
  }
  // Optional fields must still be the right kind when present.
  for (const char* key : {"id", "circuit", "kiss2", "tests"}) {
    const JsonField* f = json_find_field(top, key);
    if (f != nullptr && f->kind != 's') {
      *error = std::string("mistyped string field ") + key;
      return false;
    }
  }
  for (const char* key :
       {"uio", "xfer", "time_budget_ms", "max_expansions"}) {
    const JsonField* f = json_find_field(top, key);
    if (f != nullptr && f->kind != 'n') {
      *error = std::string("mistyped number field ") + key;
      return false;
    }
  }
  {
    const JsonField* f = json_find_field(top, "static_prune");
    if (f != nullptr && f->kind != 'b') {
      *error = "mistyped boolean field static_prune";
      return false;
    }
  }
  // Pipeline requests name their input; sim additionally needs a test set.
  if (t == "gen" || t == "sim" || t == "lint") {
    if (!json_has_field(top, "circuit", 's') &&
        !json_has_field(top, "kiss2", 's')) {
      *error = t + " request without circuit or kiss2";
      return false;
    }
  }
  if (t == "sim" && !json_has_field(top, "tests", 's')) {
    *error = "sim request without tests";
    return false;
  }
  return true;
}

bool validate_serve_response_json(const std::string& text,
                                  std::string* error) {
  std::vector<JsonField> top;
  if (!json_parse_object(text, &top, nullptr, error)) return false;

  const JsonField* schema = json_find_field(top, "schema");
  if (schema == nullptr || schema->kind != 's' ||
      schema->sval != "fstg.serve_response.v1") {
    *error = "missing or wrong schema tag (want fstg.serve_response.v1)";
    return false;
  }
  for (const char* key : {"id", "type", "error"}) {
    if (!json_has_field(top, key, 's')) {
      *error = std::string("missing or mistyped string ") + key;
      return false;
    }
  }
  const JsonField* status = json_find_field(top, "status");
  if (status == nullptr || status->kind != 's') {
    *error = "missing or mistyped status string";
    return false;
  }
  const std::string& s = status->sval;
  if (s != "ok" && s != "parse" && s != "error" && s != "budget" &&
      s != "overloaded") {
    *error = "bad status " + s + " (want ok|parse|error|budget|overloaded)";
    return false;
  }
  if (!json_has_field(top, "wall_ms", 'n')) {
    *error = "missing or mistyped number wall_ms";
    return false;
  }
  if (!json_has_field(top, "result", 'o')) {
    *error = "missing or mistyped result object";
    return false;
  }
  // A non-ok response must say what went wrong; an ok one must not cry wolf.
  const std::string& err_text = json_find_field(top, "error")->sval;
  if (s == "ok" && !err_text.empty()) {
    *error = "ok response carries an error message";
    return false;
  }
  if (s != "ok" && err_text.empty()) {
    *error = "non-ok response without an error message";
    return false;
  }
  return true;
}

}  // namespace fstg::obs
