#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fstg::obs {

/// --- Metrics registry ----------------------------------------------------
///
/// Process-wide named counters, gauges, and histograms with lock-free hot
/// paths. Counters and histograms are sharded per thread: an increment is
/// one relaxed atomic add on a cache line no other thread writes, so the
/// fault-simulation inner loops can afford to be instrumented. Shards are
/// merged on scrape (`snapshot_metrics`), and a thread that exits folds its
/// shard into a retired total first, so no count is ever lost.
///
/// Handles are registered lazily by name and are cheap to copy; the usual
/// pattern is a function-local static at the instrumentation site:
///
///   static const obs::Counter c_pushes = obs::counter("sim.event_pushes");
///   c_pushes.add(n);
///
/// The registry has fixed capacity (kMaxCounters/kMaxGauges/kMaxHistograms).
/// Registration past capacity returns an inert handle whose operations are
/// no-ops — instrumentation must never take the process down.
///
/// The full metric catalog lives in docs/OBSERVABILITY.md.

inline constexpr int kMaxCounters = 256;
inline constexpr int kMaxGauges = 64;
inline constexpr int kMaxHistograms = 48;
/// Power-of-two histogram buckets: bucket 0 holds value 0, bucket b >= 1
/// holds [2^(b-1), 2^b - 1], and the last bucket is unbounded above.
inline constexpr int kHistogramBuckets = 18;

class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const;
  void inc() const { add(1); }

 private:
  friend Counter counter(const std::string& name);
  explicit Counter(int id) : id_(id) {}
  int id_ = -1;
};

/// Gauges are last-write-wins process globals (one relaxed atomic each),
/// not sharded: they model levels, not flows.
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) const;
  void add(std::int64_t v) const;
  /// Raise to `v` if `v` is larger (high-water mark).
  void max(std::int64_t v) const;

 private:
  friend Gauge gauge(const std::string& name);
  explicit Gauge(int id) : id_(id) {}
  int id_ = -1;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(std::uint64_t value) const;

  static int bucket_of(std::uint64_t value);
  /// Inclusive lower bound of bucket `b`.
  static std::uint64_t bucket_lo(int b);

 private:
  friend Histogram histogram(const std::string& name);
  explicit Histogram(int id) : id_(id) {}
  int id_ = -1;
};

/// Look up (registering on first use) a metric by name. Thread-safe.
Counter counter(const std::string& name);
Gauge gauge(const std::string& name);
Histogram histogram(const std::string& name);

/// Global kill switch, on by default. When off, every handle operation is a
/// relaxed load + branch; the bench harness uses it to measure the cost of
/// instrumentation itself (docs/OBSERVABILITY.md, "Overhead").
void set_metrics_enabled(bool enabled);
bool metrics_enabled();

/// Small sequential id for the calling thread (0 for the first thread that
/// asks, 1 for the next, ...). Stable for the thread's lifetime; used by
/// the logger and the trace writer so lines and spans correlate.
int thread_index();

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> buckets;  ///< kHistogramBuckets entries
};

/// A merged view of every registered metric. Taken while other threads are
/// still incrementing, it is consistent in the monotone sense: every
/// counter value is one the counter actually passed through (relaxed
/// atomics, no torn reads), and successive snapshots never go backwards.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< name-sorted
  std::vector<std::pair<std::string, std::int64_t>> gauges;     ///< name-sorted
  std::vector<HistogramSnapshot> histograms;                    ///< name-sorted

  /// Value of a counter by name; 0 if not registered.
  std::uint64_t counter_value(const std::string& name) const;
  /// Value of a gauge by name; 0 if not registered.
  std::int64_t gauge_value(const std::string& name) const;
  /// Histogram by name; nullptr if not registered.
  const HistogramSnapshot* find_histogram(const std::string& name) const;
};

MetricsSnapshot snapshot_metrics();

/// Zero every value (registrations stay). Test-only: racing this against
/// concurrent increments loses the raced increments.
void reset_metrics();

/// Render a snapshot as schema `fstg.metrics.v1` JSON
/// (schemas/fstg_metrics.schema.json).
std::string metrics_to_json(const MetricsSnapshot& snap);

/// snapshot + render + write + re-read + validate. Returns false and sets
/// `*error` on write or validation failure.
bool write_metrics_json(const std::string& path, std::string* error);

}  // namespace fstg::obs
