#pragma once

#include <string>
#include <vector>

namespace fstg::obs {

/// --- Minimal JSON structural checker -------------------------------------
///
/// Enough of RFC 8259 (objects, arrays, strings, numbers, literals) to
/// re-read the JSON this codebase emits — metrics snapshots, trace files,
/// bench records — and verify it against the checked-in schemas under
/// schemas/ before CI consumes it. Since `fstg serve` it also parses
/// untrusted socket bytes, so strings decode the standard escapes
/// (\" \\ \/ \b \f \n \r \t and BMP \uXXXX) and nesting depth is capped.
/// Still not a general parser: no surrogate pairs, no duplicate-key
/// detection. A malformed emitter fails its own process instead of
/// poisoning downstream data.
///
/// The C++ validators below are the enforced mirror of the JSON Schema
/// documents (schemas/fstg_metrics.schema.json, schemas/fstg_trace.schema.json);
/// keep both in sync when the formats evolve.

/// One top-level field of a parsed object. `kind` is 's' string,
/// 'n' number, 'a' array, 'o' object, 'b' bool, '0' null. For 's' fields
/// `sval` holds the (unescaped) string value; for 'n' fields `nval` holds
/// the parsed number.
struct JsonField {
  std::string key;
  char kind = 0;
  std::string sval;
  double nval = 0.0;
};

/// Parse `text` as a single JSON object, collecting its fields. For every
/// field whose value is an array, the raw text of each element is appended
/// to `*array_bodies` tagged with the field's key (so callers can re-parse
/// the elements of the arrays they care about). Returns false and sets
/// `*error` (position-annotated) on malformed input.
bool json_parse_object(
    const std::string& text, std::vector<JsonField>* fields,
    std::vector<std::pair<std::string, std::string>>* array_bodies,
    std::string* error);

/// True iff `fields` contains `key` with kind `kind`.
bool json_has_field(const std::vector<JsonField>& fields,
                    const std::string& key, char kind);

/// Pointer to the field named `key`, or nullptr.
const JsonField* json_find_field(const std::vector<JsonField>& fields,
                                 const std::string& key);

/// Validate a metrics snapshot (schema fstg.metrics.v1): top-level schema
/// tag plus counters/gauges/histograms arrays of typed records.
bool validate_metrics_json(const std::string& text, std::string* error);

/// Validate a trace file (schema fstg.trace.v1): traceEvents array whose
/// every event carries name/ph/ts/pid/tid, with dur required on "X" events.
bool validate_trace_json(const std::string& text, std::string* error);

/// Validate a lint report (schema fstg.lint.v1): top-level schema tag,
/// source string, error/warning/info totals, truncated flag, and a findings
/// array of {rule, severity in {info,warn,error}, message, hint, file,
/// line} records whose severity totals match the header.
bool validate_lint_json(const std::string& text, std::string* error);

/// Validate an artifact-store meta/stats document (schema
/// fstg.cache_meta.v1): store_version plus blob/byte/corrupt/tmp/checkpoint
/// totals and a types array of {tag, blobs, bytes} records.
bool validate_cache_meta_json(const std::string& text, std::string* error);

/// Validate one live-telemetry tick (schema fstg.telemetry.v1): schema tag,
/// pid/seq/uptime/interval, stage string + elapsed, monotone progress
/// counters, stall state, and the counters/gauges arrays of {name, value}.
bool validate_telemetry_json(const std::string& text, std::string* error);

/// Validate one run-ledger line (schema fstg.run.v1): schema tag, run id,
/// tool/command/circuit strings, config_hash hex string, exit_code/wall_ms/
/// budget_trips, and stages/counters arrays of typed records.
bool validate_run_record_json(const std::string& text, std::string* error);

/// Validate a ledger report (schema fstg.report.v1): schema tag, ledger
/// path, run/circuit totals, regression verdict, and a circuits array of
/// {circuit, runs, baseline_run, latest_run, stages} records.
bool validate_report_json(const std::string& text, std::string* error);

/// Validate one `fstg serve` request (schema fstg.serve_request.v1):
/// schema tag, type in {gen,sim,lint,metrics,ping,shutdown}, correctly
/// typed optional fields, circuit-or-kiss2 on pipeline requests, tests on
/// sim requests.
bool validate_serve_request_json(const std::string& text, std::string* error);

/// Validate one `fstg serve` response (schema fstg.serve_response.v1):
/// schema tag, id/type strings, status in {ok,parse,error,budget,
/// overloaded} with an error message exactly when non-ok, wall_ms, and a
/// result object.
bool validate_serve_response_json(const std::string& text,
                                  std::string* error);

}  // namespace fstg::obs
