#include "base/obs/telemetry.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "base/log.h"
#include "base/obs/json_check.h"
#include "base/store/fs_util.h"

namespace fstg::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Stage bookkeeping: accumulated wall time per stage name plus the stack
/// of currently live scopes. One short mutex hold per stage begin/end —
/// scopes wrap pipeline stages and suite circuits, never per-fault work.
struct StageTable {
  std::mutex mu;
  std::map<std::string, StageTiming> totals;
  struct Live {
    std::uint64_t token;
    const char* stage;
    std::uint64_t start_us;
  };
  std::vector<Live> live;  ///< begin-ordered; back() is the current stage
  std::uint64_t next_token = 1;
};

/// Leaked on purpose, like the metrics registry: StageScope destructors can
/// run at unpredictable points during shutdown.
StageTable& stage_table() {
  static StageTable* t = new StageTable;
  return *t;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

StageScope::StageScope(const char* stage) : StageScope(stage, std::string()) {}

StageScope::StageScope(const char* stage, std::string detail)
    : stage_(stage),
      start_us_(now_us()),
      span_(stage, std::move(detail)) {
  StageTable& t = stage_table();
  std::lock_guard<std::mutex> lock(t.mu);
  token_ = t.next_token++;
  t.live.push_back({token_, stage_, start_us_});
}

StageScope::~StageScope() {
  const std::uint64_t end_us = now_us();
  StageTable& t = stage_table();
  std::lock_guard<std::mutex> lock(t.mu);
  // Remove by token, not by position: concurrent suite workers end their
  // scopes in arbitrary order relative to each other.
  for (std::size_t i = t.live.size(); i-- > 0;) {
    if (t.live[i].token == token_) {
      t.live.erase(t.live.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  StageTiming& total = t.totals[stage_];
  total.stage = stage_;
  total.ms += static_cast<double>(end_us - start_us_) / 1000.0;
  total.runs += 1;
}

std::vector<StageTiming> stage_timings() {
  StageTable& t = stage_table();
  std::lock_guard<std::mutex> lock(t.mu);
  std::vector<StageTiming> out;
  out.reserve(t.totals.size());
  for (const auto& [name, timing] : t.totals) out.push_back(timing);
  return out;  // std::map iteration is already name-sorted
}

void reset_stage_timings() {
  StageTable& t = stage_table();
  std::lock_guard<std::mutex> lock(t.mu);
  t.totals.clear();
}

ActiveStage current_stage() {
  StageTable& t = stage_table();
  std::lock_guard<std::mutex> lock(t.mu);
  ActiveStage s;
  if (t.live.empty()) return s;
  const StageTable::Live& top = t.live.back();
  s.stage = top.stage;
  s.elapsed_ms = static_cast<double>(now_us() - top.start_us) / 1000.0;
  s.active = true;
  return s;
}

TelemetrySnapshot take_telemetry_snapshot() {
  TelemetrySnapshot snap;
  snap.pid = static_cast<std::uint64_t>(::getpid());
  snap.metrics = snapshot_metrics();

  const ActiveStage stage = current_stage();
  snap.stage = stage.stage;
  snap.stage_elapsed_ms = stage.elapsed_ms;

  snap.progress_done = snap.metrics.counter_value("fault_sim.batches");
  snap.progress_total =
      snap.metrics.counter_value("fault_sim.batches_expected");
  snap.faults_simulated =
      snap.metrics.counter_value("fault_sim.faults_simulated");
  snap.cycles = snap.metrics.counter_value("scan.cycles_skipped") +
                snap.metrics.counter_value("scan.cycles_overlay") +
                snap.metrics.counter_value("scan.cycles_full");
  for (const auto& [name, value] : snap.metrics.counters) {
    if (name.rfind("cache.", 0) == 0 && name.ends_with(".hit"))
      snap.cache_hits += value;
  }
  snap.stalls = snap.metrics.counter_value("telemetry.stall");
  return snap;
}

std::string telemetry_to_json(const TelemetrySnapshot& snap) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "{\n  \"schema\": \"fstg.telemetry.v1\",\n"
     << "  \"pid\": " << snap.pid << ",\n"
     << "  \"seq\": " << snap.seq << ",\n"
     << "  \"uptime_ms\": " << snap.uptime_ms << ",\n"
     << "  \"interval_ms\": " << snap.interval_ms << ",\n"
     << "  \"stage\": \"" << json_escape(snap.stage) << "\",\n"
     << "  \"stage_elapsed_ms\": " << snap.stage_elapsed_ms << ",\n"
     << "  \"progress_done\": " << snap.progress_done << ",\n"
     << "  \"progress_total\": " << snap.progress_total << ",\n"
     << "  \"progress_unit\": \"batches\",\n"
     << "  \"eta_ms\": " << snap.eta_ms << ",\n"
     << "  \"faults_simulated\": " << snap.faults_simulated << ",\n"
     << "  \"cycles\": " << snap.cycles << ",\n"
     << "  \"cache_hits\": " << snap.cache_hits << ",\n"
     << "  \"stalled\": " << (snap.stalled ? "true" : "false") << ",\n"
     << "  \"stalls\": " << snap.stalls << ",\n"
     << "  \"counters\": [\n";
  for (std::size_t i = 0; i < snap.metrics.counters.size(); ++i)
    os << "    {\"name\": \"" << json_escape(snap.metrics.counters[i].first)
       << "\", \"value\": " << snap.metrics.counters[i].second << "}"
       << (i + 1 < snap.metrics.counters.size() ? "," : "") << "\n";
  os << "  ],\n  \"gauges\": [\n";
  for (std::size_t i = 0; i < snap.metrics.gauges.size(); ++i)
    os << "    {\"name\": \"" << json_escape(snap.metrics.gauges[i].first)
       << "\", \"value\": " << snap.metrics.gauges[i].second << "}"
       << (i + 1 < snap.metrics.gauges.size() ? "," : "") << "\n";
  os << "  ]\n}\n";
  return os.str();
}

/// --- The exporter thread --------------------------------------------------

struct TelemetryExporter::Impl {
  std::thread thread;
  std::mutex mu;
  std::condition_variable cv;
  bool stop_requested = false;
  bool running = false;

  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> stall_count{0};

  Clock::time_point start_time{};
  Clock::time_point last_progress{};
  std::uint64_t last_fingerprint = 0;
  bool stalled = false;
  bool write_error_logged = false;

  // Sliding window behind the ETA: one (publish time, batches done) sample
  // per tick, pruned to options.eta_window_ms. Only the exporter's own
  // publish path touches it (start/stop publish with the thread quiescent).
  std::deque<std::pair<Clock::time_point, std::uint64_t>> eta_samples;
};

TelemetryExporter::TelemetryExporter(TelemetryOptions options)
    : options_(std::move(options)), impl_(std::make_unique<Impl>()) {
  options_.interval_ms = std::max(1, options_.interval_ms);
  options_.stall_window_ms = std::max(options_.interval_ms,
                                      options_.stall_window_ms);
  options_.eta_window_ms = std::max(options_.interval_ms,
                                    options_.eta_window_ms);
}

TelemetryExporter::~TelemetryExporter() { stop(); }

namespace {

/// No-progress fingerprint: every counter except the exporter's own
/// `telemetry.*` family (the stall counter itself must not read as
/// progress, or one stall would re-arm the watchdog forever).
std::uint64_t progress_fingerprint(const MetricsSnapshot& snap) {
  std::uint64_t fp = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("telemetry.", 0) == 0) continue;
    fp = fp * 1000003u + value;  // order-sensitive mix, not just a sum
  }
  return fp;
}

}  // namespace

bool TelemetryExporter::publish() {
  static const Counter c_ticks = counter("telemetry.ticks");
  static const Counter c_stall = counter("telemetry.stall");
  static const Counter c_write_errors = counter("telemetry.write_errors");

  Impl& im = *impl_;
  TelemetrySnapshot snap = take_telemetry_snapshot();
  const Clock::time_point now = Clock::now();
  snap.uptime_ms =
      std::chrono::duration<double, std::milli>(now - im.start_time).count();
  snap.interval_ms = options_.interval_ms;
  snap.seq = im.seq.fetch_add(1, std::memory_order_relaxed);

  // Stall watchdog: any non-telemetry counter advancing is progress.
  const std::uint64_t fp = progress_fingerprint(snap.metrics);
  if (fp != im.last_fingerprint) {
    im.last_fingerprint = fp;
    im.last_progress = now;
    im.stalled = false;
  } else if (!im.stalled &&
             std::chrono::duration<double, std::milli>(now - im.last_progress)
                     .count() >= static_cast<double>(options_.stall_window_ms)) {
    im.stalled = true;
    im.stall_count.fetch_add(1, std::memory_order_relaxed);
    c_stall.inc();
    log_warn("telemetry: no progress counter advanced for " +
             std::to_string(options_.stall_window_ms) +
             "ms (stage " +
             (snap.stage.empty() ? std::string("<idle>") : snap.stage) + ")");
  }
  snap.stalled = im.stalled;
  snap.stalls = im.stall_count.load(std::memory_order_relaxed);

  // ETA from sliding-window throughput of the batch counters: lifetime
  // rate would keep flattering the estimate long after a warm-cache burst
  // (most batches done in the first tick) has left the window. The front
  // sample is the youngest one at least eta_window_ms old — the window's
  // baseline; no progress since it means the ETA is honestly unknown.
  im.eta_samples.emplace_back(now, snap.progress_done);
  while (im.eta_samples.size() >= 2 &&
         std::chrono::duration<double, std::milli>(
             now - im.eta_samples[1].first)
                 .count() >= static_cast<double>(options_.eta_window_ms))
    im.eta_samples.pop_front();
  const auto& [window_start, done_at_window_start] = im.eta_samples.front();
  if (snap.progress_total > snap.progress_done &&
      snap.progress_done > done_at_window_start) {
    const double span_ms =
        std::chrono::duration<double, std::milli>(now - window_start).count();
    if (span_ms > 0.0) {
      const double rate =
          static_cast<double>(snap.progress_done - done_at_window_start) /
          span_ms;  // batches per ms
      snap.eta_ms =
          static_cast<double>(snap.progress_total - snap.progress_done) / rate;
    }
  }

  const std::string json = telemetry_to_json(snap);
  std::string error;
  if (!validate_telemetry_json(json, &error) ||
      !store::atomic_write_file(options_.path, json, &error)) {
    c_write_errors.inc();
    if (!im.write_error_logged) {
      im.write_error_logged = true;  // once: a full disk ticks 4x a second
      log_warn("telemetry: cannot publish " + options_.path + ": " + error);
    }
    return false;
  }
  c_ticks.inc();
  return true;
}

void TelemetryExporter::run() {
  Impl& im = *impl_;
  const auto interval = std::chrono::milliseconds(options_.interval_ms);
  std::unique_lock<std::mutex> lock(im.mu);
  Clock::time_point deadline = Clock::now() + interval;
  while (!im.stop_requested) {
    // Absolute deadline + stop predicate: a spurious wakeup (or a test
    // poke) goes back to sleep for the remainder of the interval instead
    // of publishing early, so the interval_ms cadence contract holds.
    if (im.cv.wait_until(lock, deadline, [&] { return im.stop_requested; }))
      break;
    lock.unlock();
    publish();
    lock.lock();
    deadline += interval;
    const Clock::time_point now = Clock::now();
    if (deadline < now) deadline = now + interval;  // fell behind: re-anchor
  }
}

bool TelemetryExporter::start(std::string* error) {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    if (im.running) return true;
    if (options_.path.empty()) {
      if (error) *error = "telemetry path is empty";
      return false;
    }
    im.stop_requested = false;
    im.start_time = Clock::now();
    im.last_progress = im.start_time;
  }
  {
    const MetricsSnapshot initial = snapshot_metrics();
    im.last_fingerprint = progress_fingerprint(initial);
    im.eta_samples.clear();
  }
  // First publish up front: a bad destination fails loudly at startup, and
  // even a run shorter than one interval leaves a valid live file behind.
  if (!publish()) {
    if (error) *error = "cannot write telemetry file " + options_.path;
    return false;
  }
  std::lock_guard<std::mutex> lock(im.mu);
  im.thread = std::thread([this] { run(); });
  im.running = true;
  return true;
}

void TelemetryExporter::stop() {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    if (!im.running) return;
    im.stop_requested = true;
  }
  im.cv.notify_all();
  im.thread.join();
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.running = false;
  }
  publish();  // final snapshot: the file ends reflecting the finished run
}

bool TelemetryExporter::running() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->running;
}

std::uint64_t TelemetryExporter::ticks() const {
  return impl_->seq.load(std::memory_order_relaxed);
}

std::uint64_t TelemetryExporter::stalls() const {
  return impl_->stall_count.load(std::memory_order_relaxed);
}

void TelemetryExporter::wake_for_test() { impl_->cv.notify_all(); }

/// --- Process-global exporter (the --telemetry-out flag) -------------------

namespace {
std::unique_ptr<TelemetryExporter>& global_exporter() {
  static std::unique_ptr<TelemetryExporter> e;
  return e;
}
}  // namespace

bool start_global_telemetry(const TelemetryOptions& options,
                            std::string* error) {
  std::unique_ptr<TelemetryExporter>& e = global_exporter();
  if (e && e->running()) return true;
  e = std::make_unique<TelemetryExporter>(options);
  if (!e->start(error)) {
    e.reset();
    return false;
  }
  return true;
}

void stop_global_telemetry() {
  std::unique_ptr<TelemetryExporter>& e = global_exporter();
  if (e) {
    e->stop();
    e.reset();
  }
}

}  // namespace fstg::obs
