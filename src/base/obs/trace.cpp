#include "base/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "base/obs/json_check.h"
#include "base/obs/metrics.h"
#include "base/store/fs_util.h"

namespace fstg::obs {

namespace {

constexpr std::uint64_t kInstantDur = ~std::uint64_t{0};

struct TraceEvent {
  const char* name;  ///< string literal at the instrumentation site
  std::string detail;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;  ///< kInstantDur marks an "i" event
  int tid = 0;
};

/// One thread's event buffer. shared_ptr-owned by both the thread_local
/// registration and the session, so events survive their thread's exit.
struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
};

struct TraceSession {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  std::atomic<bool> active{false};
  std::chrono::steady_clock::time_point epoch;
};

/// Leaked on purpose (same shutdown-order reasoning as the metrics
/// registry).
TraceSession& session() {
  static TraceSession* s = new TraceSession;
  return *s;
}

thread_local std::shared_ptr<TraceBuffer> t_buffer;

TraceBuffer& tls_buffer() {
  if (!t_buffer) {
    t_buffer = std::make_shared<TraceBuffer>();
    TraceSession& s = session();
    std::lock_guard<std::mutex> lock(s.mu);
    s.buffers.push_back(t_buffer);
  }
  return *t_buffer;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - session().epoch)
          .count());
}

void record(const char* name, std::string detail, std::uint64_t ts_us,
            std::uint64_t dur_us) {
  TraceEvent ev;
  ev.name = name;
  ev.detail = std::move(detail);
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = thread_index();
  TraceBuffer& buf = tls_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(std::move(ev));
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // control chars out
    out.push_back(c);
  }
  return out;
}

}  // namespace

bool tracing_active() {
  return session().active.load(std::memory_order_relaxed);
}

void start_tracing() {
  TraceSession& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  for (const auto& buf : s.buffers) {
    std::lock_guard<std::mutex> block(buf->mu);
    buf->events.clear();
  }
  s.epoch = std::chrono::steady_clock::now();
  s.active.store(true, std::memory_order_relaxed);
}

std::string stop_tracing_to_json() {
  TraceSession& s = session();
  s.active.store(false, std::memory_order_relaxed);

  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& buf : s.buffers) {
      std::lock_guard<std::mutex> block(buf->mu);
      events.insert(events.end(), buf->events.begin(), buf->events.end());
      buf->events.clear();
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us != b.ts_us ? a.ts_us < b.ts_us : a.tid < b.tid;
            });

  std::ostringstream os;
  os << "{\n  \"displayTimeUnit\": \"ms\",\n"
     << "  \"otherData\": {\"schema\": \"fstg.trace.v1\"},\n"
     << "  \"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    os << "    {\"name\": \"" << json_escape(ev.name)
       << "\", \"cat\": \"fstg\", \"ph\": \""
       << (ev.dur_us == kInstantDur ? "i" : "X") << "\", \"ts\": " << ev.ts_us;
    if (ev.dur_us != kInstantDur) os << ", \"dur\": " << ev.dur_us;
    os << ", \"pid\": 1, \"tid\": " << ev.tid;
    if (ev.dur_us == kInstantDur) os << ", \"s\": \"t\"";
    if (!ev.detail.empty())
      os << ", \"args\": {\"detail\": \"" << json_escape(ev.detail) << "\"}";
    os << "}" << (i + 1 < events.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

bool write_trace_json(const std::string& path, std::string* error) {
  // Schema-validate BEFORE the write, then write atomically (temp + fsync +
  // rename): a crash, ENOSPC short write, or invalid document can never
  // leave a torn or malformed file at `path`.
  const std::string json = stop_tracing_to_json();
  std::string verr;
  if (!validate_trace_json(json, &verr)) {
    if (error) *error = path + " failed schema validation: " + verr;
    return false;
  }
  if (!store::atomic_write_file(path, json, &verr)) {
    if (error) *error = "cannot write " + path + ": " + verr;
    return false;
  }
  return true;
}

Span::Span(const char* name) : Span(name, std::string()) {}

Span::Span(const char* name, std::string detail) {
  if (!tracing_active()) return;
  name_ = name;
  detail_ = std::move(detail);
  start_us_ = now_us();
  active_ = true;
}

Span::~Span() {
  if (!active_ || !tracing_active()) return;
  const std::uint64_t end = now_us();
  record(name_, std::move(detail_), start_us_,
         end > start_us_ ? end - start_us_ : 0);
}

void trace_instant(const char* name, std::string detail) {
  if (!tracing_active()) return;
  record(name, std::move(detail), now_us(), kInstantDur);
}

}  // namespace fstg::obs
