#include "base/obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <fstream>
#include <mutex>
#include <sstream>

#include "base/obs/json_check.h"
#include "base/store/fs_util.h"

namespace fstg::obs {

namespace {

/// One thread's private slice of every sharded metric. Fixed-size so a
/// shard can be read by the scraper while its owner keeps incrementing:
/// nothing ever reallocates. std::atomic members are value-initialized
/// (zero) in C++20.
struct Shard {
  std::atomic<std::uint64_t> counters[kMaxCounters] = {};
  std::atomic<std::uint64_t> hist_buckets[kMaxHistograms][kHistogramBuckets] =
      {};
  std::atomic<std::uint64_t> hist_sum[kMaxHistograms] = {};
  std::atomic<std::uint64_t> hist_count[kMaxHistograms] = {};

  void merge_into(Shard& dst) const {
    for (int i = 0; i < kMaxCounters; ++i)
      dst.counters[i].fetch_add(counters[i].load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
    for (int h = 0; h < kMaxHistograms; ++h) {
      for (int b = 0; b < kHistogramBuckets; ++b)
        dst.hist_buckets[h][b].fetch_add(
            hist_buckets[h][b].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      dst.hist_sum[h].fetch_add(hist_sum[h].load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
      dst.hist_count[h].fetch_add(
          hist_count[h].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
  }

  void zero() {
    for (int i = 0; i < kMaxCounters; ++i)
      counters[i].store(0, std::memory_order_relaxed);
    for (int h = 0; h < kMaxHistograms; ++h) {
      for (int b = 0; b < kHistogramBuckets; ++b)
        hist_buckets[h][b].store(0, std::memory_order_relaxed);
      hist_sum[h].store(0, std::memory_order_relaxed);
      hist_count[h].store(0, std::memory_order_relaxed);
    }
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> hist_names;
  std::vector<Shard*> live;  ///< shards of running threads
  Shard retired;             ///< merged shards of exited threads
  std::atomic<std::int64_t> gauges[kMaxGauges] = {};
  std::atomic<bool> enabled{true};
  int next_thread_index = 0;
};

/// Leaked on purpose: thread_local shard owners destruct at unpredictable
/// points during shutdown and must always find a live registry.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

/// Registers the calling thread's shard on first metric touch and folds it
/// into `retired` when the thread exits.
struct ShardOwner {
  Shard* shard = nullptr;
  int index = -1;

  ~ShardOwner() {
    if (!shard) return;
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    shard->merge_into(r.retired);
    r.live.erase(std::remove(r.live.begin(), r.live.end(), shard),
                 r.live.end());
    delete shard;
  }
};

thread_local ShardOwner t_shard;

ShardOwner& tls_owner() {
  if (!t_shard.shard) {
    Shard* shard = new Shard;
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.live.push_back(shard);
    t_shard.index = r.next_thread_index++;
    t_shard.shard = shard;  // publish last: shard is fully constructed
  }
  return t_shard;
}

int lookup_or_register(std::vector<std::string>& names, int cap,
                       const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return static_cast<int>(i);
  if (static_cast<int>(names.size()) >= cap) return -1;  // inert handle
  names.push_back(name);
  return static_cast<int>(names.size()) - 1;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

Counter counter(const std::string& name) {
  return Counter(lookup_or_register(registry().counter_names, kMaxCounters,
                                    name));
}

Gauge gauge(const std::string& name) {
  return Gauge(lookup_or_register(registry().gauge_names, kMaxGauges, name));
}

Histogram histogram(const std::string& name) {
  return Histogram(lookup_or_register(registry().hist_names, kMaxHistograms,
                                      name));
}

void Counter::add(std::uint64_t n) const {
  if (id_ < 0) return;
  Registry& r = registry();
  if (!r.enabled.load(std::memory_order_relaxed)) return;
  tls_owner().shard->counters[id_].fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(std::int64_t v) const {
  if (id_ < 0) return;
  Registry& r = registry();
  if (!r.enabled.load(std::memory_order_relaxed)) return;
  r.gauges[id_].store(v, std::memory_order_relaxed);
}

void Gauge::add(std::int64_t v) const {
  if (id_ < 0) return;
  Registry& r = registry();
  if (!r.enabled.load(std::memory_order_relaxed)) return;
  r.gauges[id_].fetch_add(v, std::memory_order_relaxed);
}

void Gauge::max(std::int64_t v) const {
  if (id_ < 0) return;
  Registry& r = registry();
  if (!r.enabled.load(std::memory_order_relaxed)) return;
  std::int64_t cur = r.gauges[id_].load(std::memory_order_relaxed);
  while (v > cur && !r.gauges[id_].compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

int Histogram::bucket_of(std::uint64_t value) {
  if (value == 0) return 0;
  return std::min<int>(std::bit_width(value), kHistogramBuckets - 1);
}

std::uint64_t Histogram::bucket_lo(int b) {
  if (b <= 0) return 0;
  return std::uint64_t{1} << (b - 1);
}

void Histogram::observe(std::uint64_t value) const {
  if (id_ < 0) return;
  Registry& r = registry();
  if (!r.enabled.load(std::memory_order_relaxed)) return;
  Shard* shard = tls_owner().shard;
  shard->hist_buckets[id_][bucket_of(value)].fetch_add(
      1, std::memory_order_relaxed);
  shard->hist_sum[id_].fetch_add(value, std::memory_order_relaxed);
  shard->hist_count[id_].fetch_add(1, std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  registry().enabled.store(enabled, std::memory_order_relaxed);
}

bool metrics_enabled() {
  return registry().enabled.load(std::memory_order_relaxed);
}

int thread_index() { return tls_owner().index; }

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

std::int64_t MetricsSnapshot::gauge_value(const std::string& name) const {
  for (const auto& [n, v] : gauges)
    if (n == name) return v;
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

MetricsSnapshot snapshot_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);

  const std::size_t nc = r.counter_names.size();
  const std::size_t nh = r.hist_names.size();
  std::vector<std::uint64_t> counts(nc, 0);
  std::vector<HistogramSnapshot> hists(nh);
  for (std::size_t h = 0; h < nh; ++h) {
    hists[h].name = r.hist_names[h];
    hists[h].buckets.assign(kHistogramBuckets, 0);
  }

  const auto accumulate = [&](const Shard& s) {
    for (std::size_t i = 0; i < nc; ++i)
      counts[i] += s.counters[i].load(std::memory_order_relaxed);
    for (std::size_t h = 0; h < nh; ++h) {
      for (int b = 0; b < kHistogramBuckets; ++b)
        hists[h].buckets[static_cast<std::size_t>(b)] +=
            s.hist_buckets[h][b].load(std::memory_order_relaxed);
      hists[h].sum += s.hist_sum[h].load(std::memory_order_relaxed);
      hists[h].count += s.hist_count[h].load(std::memory_order_relaxed);
    }
  };
  accumulate(r.retired);
  for (const Shard* s : r.live) accumulate(*s);

  MetricsSnapshot snap;
  snap.counters.reserve(nc);
  for (std::size_t i = 0; i < nc; ++i)
    snap.counters.emplace_back(r.counter_names[i], counts[i]);
  snap.gauges.reserve(r.gauge_names.size());
  for (std::size_t i = 0; i < r.gauge_names.size(); ++i)
    snap.gauges.emplace_back(r.gauge_names[i],
                             r.gauges[i].load(std::memory_order_relaxed));
  snap.histograms = std::move(hists);

  std::sort(snap.counters.begin(), snap.counters.end());
  std::sort(snap.gauges.begin(), snap.gauges.end());
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.retired.zero();
  for (Shard* s : r.live) s->zero();
  for (int i = 0; i < kMaxGauges; ++i)
    r.gauges[i].store(0, std::memory_order_relaxed);
}

std::string metrics_to_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"fstg.metrics.v1\",\n  \"counters\": [\n";
  for (std::size_t i = 0; i < snap.counters.size(); ++i)
    os << "    {\"name\": \"" << json_escape(snap.counters[i].first)
       << "\", \"value\": " << snap.counters[i].second << "}"
       << (i + 1 < snap.counters.size() ? "," : "") << "\n";
  os << "  ],\n  \"gauges\": [\n";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i)
    os << "    {\"name\": \"" << json_escape(snap.gauges[i].first)
       << "\", \"value\": " << snap.gauges[i].second << "}"
       << (i + 1 < snap.gauges.size() ? "," : "") << "\n";
  os << "  ],\n  \"histograms\": [\n";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    os << "    {\"name\": \"" << json_escape(h.name)
       << "\", \"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"buckets\": [";
    for (int b = 0; b < kHistogramBuckets; ++b)
      os << h.buckets[static_cast<std::size_t>(b)]
         << (b + 1 < kHistogramBuckets ? ", " : "");
    os << "]}" << (i + 1 < snap.histograms.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

bool write_metrics_json(const std::string& path, std::string* error) {
  // Schema-validate BEFORE the write, then write atomically (temp + fsync +
  // rename): a crash, ENOSPC short write, or invalid document can never
  // leave a torn or malformed file at `path`.
  const std::string json = metrics_to_json(snapshot_metrics());
  std::string verr;
  if (!validate_metrics_json(json, &verr)) {
    if (error) *error = path + " failed schema validation: " + verr;
    return false;
  }
  if (!store::atomic_write_file(path, json, &verr)) {
    if (error) *error = "cannot write " + path + ": " + verr;
    return false;
  }
  return true;
}

}  // namespace fstg::obs
