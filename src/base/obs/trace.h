#pragma once

#include <cstdint>
#include <string>

namespace fstg::obs {

/// --- Span tracing --------------------------------------------------------
///
/// RAII spans that render as Chrome `trace_event` JSON ("X" complete
/// events), viewable in Perfetto (https://ui.perfetto.dev) or
/// chrome://tracing. Tracing is off by default: an inactive Span costs one
/// relaxed atomic load. When active, span begin/end timestamps land in a
/// per-thread buffer (one short mutex hold per completed span; buffers are
/// only contended at stop_tracing time).
///
///   obs::start_tracing();
///   { obs::Span span("synth", circuit_name); ... }
///   obs::write_trace_json("trace.json", &error);
///
/// Thread ids in the output are obs::thread_index() values, matching the
/// logger's `tN` tags.

bool tracing_active();

/// Begin capture. Clears any events buffered by a previous session.
void start_tracing();

/// Stop capture and render every buffered event as trace JSON
/// (schema fstg.trace.v1; schemas/fstg_trace.schema.json).
std::string stop_tracing_to_json();

/// stop + write + re-read + validate. Returns false and sets `*error` on
/// write or validation failure.
bool write_trace_json(const std::string& path, std::string* error);

class Span {
 public:
  explicit Span(const char* name);
  /// `detail` lands in the event's args ({"detail": ...}) — circuit names,
  /// fault counts, slot indices. Only evaluated into the event when
  /// tracing is active, but the argument itself is built by the caller;
  /// keep construction cheap at hot sites.
  Span(const char* name, std::string detail);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::string detail_;
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

/// Zero-duration marker ("i" instant event).
void trace_instant(const char* name, std::string detail = {});

}  // namespace fstg::obs
