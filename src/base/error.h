#pragma once

#include <stdexcept>
#include <string>

namespace fstg {

/// Base exception for all library errors. Thrown on malformed input,
/// violated preconditions detectable at runtime, and resource limits.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Input files / embedded benchmark text that fail to parse.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line)
      : Error("parse error at line " + std::to_string(line) + ": " + what),
        line_(line) {}

  int line() const { return line_; }

 private:
  int line_;
};

/// A resource budget (wall clock, expansions, memory estimate) ran out in
/// a context that has no channel for a typed partial result. Kept distinct
/// from Error so the structured-error boundary (`base/robust/status.h`)
/// can map it to Code::kBudgetExhausted instead of kInternal.
class BudgetError : public Error {
 public:
  explicit BudgetError(const std::string& what) : Error(what) {}
};

/// Throw Error with a message if `cond` is false. Used for precondition
/// checks that must stay active in release builds (they guard user input).
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw Error(msg);
}

}  // namespace fstg
