#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fstg {

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Split on runs of ASCII whitespace; no empty tokens.
std::vector<std::string> split_ws(std::string_view s);

/// Split on a single character; keeps empty fields.
std::vector<std::string> split_char(std::string_view s, char sep);

/// True if `s` consists only of the characters in `allowed` and is nonempty.
bool all_chars_in(std::string_view s, std::string_view allowed);

/// printf-style helper returning std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace fstg
