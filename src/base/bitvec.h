#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fstg {

/// Dynamically sized bit vector used for state sets, fault masks, and
/// structural reachability rows. Stores 64 bits per word; all operations
/// outside the logical size read as zero and writes beyond the size are
/// undefined (checked in debug via assert-like tests).
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t n, bool value = false);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void resize(std::size_t n, bool value = false);
  void clear();

  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void assign_bit(std::size_t i, bool v) {
    if (v) set(i); else reset(i);
  }

  /// Set/clear every bit.
  void set_all();
  void reset_all();

  /// Number of set bits.
  std::size_t count() const;
  bool any() const;
  bool none() const { return !any(); }

  /// Index of the first set bit at or after `from`, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find_first(std::size_t from = 0) const;

  BitVec& operator|=(const BitVec& o);
  BitVec& operator&=(const BitVec& o);
  BitVec& operator^=(const BitVec& o);
  /// this &= ~o
  BitVec& and_not(const BitVec& o);

  bool operator==(const BitVec& o) const;

  /// True if (this & o) has any set bit.
  bool intersects(const BitVec& o) const;
  /// True if every set bit of this is also set in o.
  bool is_subset_of(const BitVec& o) const;

  const std::vector<std::uint64_t>& words() const { return words_; }
  std::vector<std::uint64_t>& words() { return words_; }

 private:
  void trim_tail();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fstg
