#include "base/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "base/obs/metrics.h"
#include "base/timer.h"

namespace fstg {

namespace {
std::atomic<LogLevel> g_level = LogLevel::kWarn;

/// Serializes whole lines: worker threads (parallel suite / fault sim) log
/// through the same sink, and interleaved fprintf halves are useless.
std::mutex g_log_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// Monotonic seconds since the first log call: cheap, strictly ordered
/// within a thread, and immune to wall-clock jumps. Interleaved worker
/// lines sort by it.
double uptime_seconds() {
  static const Timer t_start;
  return t_start.seconds();
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::string format_log_line(LogLevel level, const std::string& msg) {
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[fstg %s t%d +%.6fs] ",
                level_name(level), obs::thread_index(), uptime_seconds());
  return std::string(prefix) + msg;
}

void log(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  const std::string line = format_log_line(level, msg);
  std::lock_guard<std::mutex> lock(g_log_mu);
  std::fprintf(stderr, "%s\n", line.c_str());
  // Errors must be on disk before anything that might follow them (abort,
  // exit, a crashing worker): pay the flush only at kError.
  if (level == LogLevel::kError) std::fflush(stderr);
}

}  // namespace fstg
