#include "base/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace fstg {

namespace {
std::atomic<LogLevel> g_level = LogLevel::kWarn;

/// Serializes whole lines: worker threads (parallel suite / fault sim) log
/// through the same sink, and interleaved fprintf halves are useless.
std::mutex g_log_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(g_log_mu);
  std::fprintf(stderr, "[fstg %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace fstg
