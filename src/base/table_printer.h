#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace fstg {

/// Column-aligned plain-text table writer used by the benchmark harness to
/// print the paper's tables (paper values alongside measured values).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles/ints into cells.
  static std::string num(long long v);
  static std::string num(double v, int decimals = 2);

  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fstg
