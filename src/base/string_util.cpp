#include "base/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace fstg {

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split_char(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool all_chars_in(std::string_view s, std::string_view allowed) {
  if (s.empty()) return false;
  for (char c : s)
    if (allowed.find(c) == std::string_view::npos) return false;
  return true;
}

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace fstg
