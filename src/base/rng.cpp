#include "base/rng.h"

#include "base/error.h"

namespace fstg {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng Rng::from_name(std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return Rng(h);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  require(bound > 0, "Rng::below bound must be positive");
  // Rejection-free in the common case; bias is negligible for our uses but
  // we still use Lemire's nearly-divisionless method for uniformity.
  unsigned __int128 m =
      static_cast<unsigned __int128>(next()) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      m = static_cast<unsigned __int128>(next()) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  require(lo <= hi, "Rng::range requires lo <= hi");
  return lo + below(hi - lo + 1);
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  require(den > 0, "Rng::chance requires positive denominator");
  return below(den) < num;
}

}  // namespace fstg
