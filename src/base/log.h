#pragma once

#include <string>

namespace fstg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. The benchmark harness raises
/// the level so table output on stdout stays clean.
void set_log_level(LogLevel level);
LogLevel log_level();

/// The exact line `log` emits (sans trailing newline):
/// `[fstg LEVEL tN +S.SSSSSSs] msg` — level name, obs::thread_index(), and
/// monotonic seconds since the first log call, so interleaved worker lines
/// stay attributable and ordered. Exposed for tests.
std::string format_log_line(LogLevel level, const std::string& msg);

/// Emit one line to stderr (filtered by the level). kError lines are
/// flushed immediately.
void log(LogLevel level, const std::string& msg);

inline void log_debug(const std::string& msg) { log(LogLevel::kDebug, msg); }
inline void log_info(const std::string& msg) { log(LogLevel::kInfo, msg); }
inline void log_warn(const std::string& msg) { log(LogLevel::kWarn, msg); }
inline void log_error(const std::string& msg) { log(LogLevel::kError, msg); }

}  // namespace fstg
