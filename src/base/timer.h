#pragma once

#include <chrono>

namespace fstg {

/// Wall-clock stopwatch for the CPU-time columns of Tables 4 and 5.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fstg
