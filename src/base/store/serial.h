#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace fstg::store {

/// --- Bounded binary (de)serialization ------------------------------------
///
/// The artifact store's payload codec. Little-endian, length-prefixed,
/// no pointers, no seeking. The writer is infallible; the reader is the
/// strict load path's workhorse: every read is bounds-checked against the
/// payload, any overrun or leftover trailing bytes sets a sticky fail bit,
/// and all values read after a failure are zero. Deserializers check
/// `ok()` (and their own semantic invariants) and treat failure as blob
/// corruption — never as an error to surface.

class BlobWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void i32(std::int32_t v) { raw(&v, 4); }
  void f64(double v) { raw(&v, 8); }
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }
  void vec_u32(const std::vector<std::uint32_t>& v) {
    u64(v.size());
    for (std::uint32_t x : v) u32(x);
  }
  void vec_i32(const std::vector<std::int32_t>& v) {
    u64(v.size());
    for (std::int32_t x : v) i32(x);
  }
  void vec_u64(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    for (std::uint64_t x : v) u64(x);
  }

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const std::size_t at = buf_.size();
    buf_.resize(at + n);
    std::memcpy(buf_.data() + at, p, n);
  }

  std::string buf_;
};

class BlobReader {
 public:
  explicit BlobReader(std::string_view bytes) : bytes_(bytes) {}
  // The reader only views the bytes; a temporary would dangle immediately.
  explicit BlobReader(std::string&&) = delete;

  std::uint8_t u8() {
    std::uint8_t v = 0;
    raw(&v, 1);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, 8);
    return v;
  }
  std::int32_t i32() {
    std::int32_t v = 0;
    raw(&v, 4);
    return v;
  }
  double f64() {
    double v = 0;
    raw(&v, 8);
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (n > remaining()) {
      fail_ = true;
      return {};
    }
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  std::vector<std::uint32_t> vec_u32() { return vec<std::uint32_t, 4>(); }
  std::vector<std::int32_t> vec_i32() { return vec<std::int32_t, 4>(); }
  std::vector<std::uint64_t> vec_u64() { return vec<std::uint64_t, 8>(); }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  /// A clean parse consumed every byte and never overran.
  bool ok() const { return !fail_; }
  bool done() const { return !fail_ && pos_ == bytes_.size(); }
  /// Deserializers call this on a violated semantic invariant (range,
  /// cross-field consistency): same verdict as a structural overrun.
  void fail() { fail_ = true; }

 private:
  void raw(void* p, std::size_t n) {
    if (fail_ || n > remaining()) {
      fail_ = true;
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, bytes_.data() + pos_, n);
    pos_ += n;
  }

  template <typename T, std::size_t kWidth>
  std::vector<T> vec() {
    const std::uint64_t n = u64();
    // The length prefix cannot promise more elements than bytes remain:
    // rejecting here keeps a corrupt length from driving a huge allocation.
    if (fail_ || n * kWidth > remaining()) {
      fail_ = true;
      return {};
    }
    std::vector<T> v(n);
    if (n) raw(v.data(), n * kWidth);
    return v;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

}  // namespace fstg::store
