#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fstg::store {

/// --- Crash-consistent filesystem helpers ---------------------------------
///
/// Every durable file this codebase writes — store blobs, checkpoint
/// records, --metrics-out/--trace-out JSON, lint reports, generated test
/// files — goes through `atomic_write_file`: write to a same-directory
/// temporary, fsync the data, atomically rename over the target, fsync the
/// directory. A reader therefore sees either the old file or the complete
/// new file, never a truncated in-between, and short writes (ENOSPC) are
/// reported instead of silently producing a partial artifact.

/// Atomically replace `path` with `data`. On failure returns false, sets
/// `*error` (with errno detail, e.g. "No space left on device"), and leaves
/// any previous file at `path` untouched; the temporary is unlinked.
bool atomic_write_file(const std::string& path, std::string_view data,
                       std::string* error);

/// Read a whole file. Returns false (with `*error`) on open/read failure;
/// does not distinguish a missing file from an unreadable one.
bool read_file(const std::string& path, std::string* data, std::string* error);

/// mkdir -p. Returns false only if a component could not be created and
/// does not already exist as a directory.
bool make_dirs(const std::string& path, std::string* error);

bool file_exists(const std::string& path);
bool dir_exists(const std::string& path);

/// Size in bytes, or -1 if the file cannot be stat'ed.
std::int64_t file_size(const std::string& path);

/// Modification time in seconds since the epoch, or -1.
std::int64_t file_mtime(const std::string& path);

bool remove_file(const std::string& path);

/// Names (not paths) of directory entries, excluding "." and "..". Returns
/// an empty list for an unreadable/missing directory.
std::vector<std::string> list_dir(const std::string& path);

/// Advisory whole-store writer lock (flock). Exclusive by construction;
/// `locked()` is false if the lock file could not be created or taken —
/// callers degrade (skip the write) rather than fail. Unlocked + closed on
/// destruction. Advisory: readers never take it (atomic rename already
/// guarantees them a consistent view); it serializes writers and gc.
class FileLock {
 public:
  explicit FileLock(const std::string& lock_path, bool block = true);
  ~FileLock();
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  bool locked() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace fstg::store
