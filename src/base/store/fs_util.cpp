#include "base/store/fs_util.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace fstg::store {

namespace {

std::string errno_detail() {
  return std::strerror(errno);
}

/// Directory part of `path` ("." if none): the temp file must live in the
/// same directory as the target for rename() to be atomic.
std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// fsync a directory so the rename itself is durable. Best-effort: some
/// filesystems refuse O_DIRECTORY fsync; the rename is still atomic.
void sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

bool atomic_write_file(const std::string& path, std::string_view data,
                       std::string* error) {
  // pid + per-process sequence keeps concurrent writers (other processes
  // or threads of this one) off each other's temporaries.
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid())) +
      "." + std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error) *error = "cannot create " + tmp + ": " + errno_detail();
    return false;
  }

  // Loop over partial writes; a short final count (ENOSPC and friends) is a
  // hard failure that must not leave a truncated file at `path`.
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error) *error = "short write to " + tmp + ": " + errno_detail();
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }

  if (::fsync(fd) != 0) {
    if (error) *error = "fsync " + tmp + ": " + errno_detail();
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    if (error) *error = "close " + tmp + ": " + errno_detail();
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error)
      *error = "rename " + tmp + " -> " + path + ": " + errno_detail();
    ::unlink(tmp.c_str());
    return false;
  }
  sync_dir(dir_of(path));
  return true;
}

bool read_file(const std::string& path, std::string* data,
               std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) {
    if (error) *error = "read failed: " + path;
    return false;
  }
  *data = ss.str();
  return true;
}

bool make_dirs(const std::string& path, std::string* error) {
  if (path.empty()) return true;
  std::string partial;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    std::size_t slash = path.find('/', pos);
    if (slash == std::string::npos) slash = path.size();
    partial = path.substr(0, slash);
    pos = slash + 1;
    if (partial.empty()) continue;  // leading '/'
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      if (error)
        *error = "mkdir " + partial + ": " + errno_detail();
      return false;
    }
  }
  if (!dir_exists(path)) {
    if (error) *error = path + " exists but is not a directory";
    return false;
  }
  return true;
}

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

bool dir_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::int64_t file_size(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<std::int64_t>(st.st_size);
}

std::int64_t file_mtime(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<std::int64_t>(st.st_mtime);
}

bool remove_file(const std::string& path) {
  return ::unlink(path.c_str()) == 0;
}

std::vector<std::string> list_dir(const std::string& path) {
  std::vector<std::string> names;
  DIR* d = ::opendir(path.c_str());
  if (!d) return names;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  return names;
}

FileLock::FileLock(const std::string& lock_path, bool block) {
  fd_ = ::open(lock_path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) return;
  const int op = LOCK_EX | (block ? 0 : LOCK_NB);
  int rc;
  do {
    rc = ::flock(fd_, op);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FileLock::~FileLock() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

}  // namespace fstg::store
