#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace fstg::store {

/// XXH64 (Yann Collet's xxHash, 64-bit variant): the checksum the artifact
/// store uses for both blob payload integrity and content-addressed cache
/// keys. Not cryptographic — the threat model is torn writes, bit rot, and
/// version skew, not an adversary forging collisions against its own cache.
std::uint64_t xxh64(const void* data, std::size_t len, std::uint64_t seed = 0);

inline std::uint64_t xxh64(std::string_view s, std::uint64_t seed = 0) {
  return xxh64(s.data(), s.size(), seed);
}

/// Incremental builder for cache keys: feed in the canonical text of each
/// input plus every option that changes the derived artifact, in a fixed
/// order, and take the final 64-bit digest. Each field is length-prefixed
/// before hashing so ("ab","c") and ("a","bc") cannot collide.
class KeyBuilder {
 public:
  KeyBuilder& add(std::string_view bytes);
  KeyBuilder& add_u64(std::uint64_t v);
  KeyBuilder& add_i64(std::int64_t v) {
    return add_u64(static_cast<std::uint64_t>(v));
  }
  KeyBuilder& add_bool(bool v) { return add_u64(v ? 1 : 0); }

  std::uint64_t digest() const { return xxh64(buf_.data(), buf_.size()); }

 private:
  std::string buf_;
};

/// 16 lowercase hex digits of a 64-bit hash (the object file-name stem).
std::string hash_hex(std::uint64_t h);

}  // namespace fstg::store
