#include "base/store/ledger.h"

#include <ctime>
#include <sstream>

#include "base/obs/json_check.h"
#include "base/obs/metrics.h"
#include "base/store/fs_util.h"
#include "base/store/store.h"

namespace fstg::store {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string iso8601_utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Split on '\n', dropping empty lines (the file is newline-terminated).
std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

}  // namespace

std::string run_record_to_json(const RunRecord& r) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "{\"schema\": \"fstg.run.v1\""
     << ", \"run\": " << r.run
     << ", \"timestamp\": \"" << json_escape(r.timestamp) << "\""
     << ", \"tool\": \"" << json_escape(r.tool) << "\""
     << ", \"command\": \"" << json_escape(r.command) << "\""
     << ", \"circuit\": \"" << json_escape(r.circuit) << "\""
     << ", \"config_hash\": \"" << json_escape(r.config_hash) << "\""
     << ", \"exit_code\": " << r.exit_code
     << ", \"wall_ms\": " << r.wall_ms
     << ", \"budget_trips\": " << r.budget_trips
     << ", \"stages\": [";
  for (std::size_t i = 0; i < r.stages.size(); ++i)
    os << (i ? ", " : "") << "{\"stage\": \"" << json_escape(r.stages[i].stage)
       << "\", \"ms\": " << r.stages[i].ms << "}";
  os << "], \"counters\": [";
  for (std::size_t i = 0; i < r.counters.size(); ++i)
    os << (i ? ", " : "") << "{\"name\": \"" << json_escape(r.counters[i].first)
       << "\", \"value\": " << r.counters[i].second << "}";
  os << "]}\n";
  return os.str();
}

bool parse_run_record(const std::string& line, RunRecord* record,
                      std::string* error) {
  if (!obs::validate_run_record_json(line, error)) return false;
  std::vector<obs::JsonField> top;
  std::vector<std::pair<std::string, std::string>> arrays;
  if (!obs::json_parse_object(line, &top, &arrays, error)) return false;

  RunRecord r;
  r.run = static_cast<std::uint64_t>(
      obs::json_find_field(top, "run")->nval);
  r.timestamp = obs::json_find_field(top, "timestamp") != nullptr &&
                        obs::json_find_field(top, "timestamp")->kind == 's'
                    ? obs::json_find_field(top, "timestamp")->sval
                    : std::string();
  r.tool = obs::json_find_field(top, "tool")->sval;
  r.command = obs::json_find_field(top, "command")->sval;
  r.circuit = obs::json_find_field(top, "circuit")->sval;
  r.config_hash = obs::json_find_field(top, "config_hash")->sval;
  r.exit_code =
      static_cast<int>(obs::json_find_field(top, "exit_code")->nval);
  r.wall_ms = obs::json_find_field(top, "wall_ms")->nval;
  r.budget_trips = static_cast<std::uint64_t>(
      obs::json_find_field(top, "budget_trips")->nval);

  for (const auto& [key, body] : arrays) {
    std::vector<obs::JsonField> fields;
    if (key == "stages") {
      if (!obs::json_parse_object(body, &fields, nullptr, error)) return false;
      RunStage s;
      s.stage = obs::json_find_field(fields, "stage")->sval;
      s.ms = obs::json_find_field(fields, "ms")->nval;
      r.stages.push_back(std::move(s));
    } else if (key == "counters") {
      if (!obs::json_parse_object(body, &fields, nullptr, error)) return false;
      r.counters.emplace_back(
          obs::json_find_field(fields, "name")->sval,
          static_cast<std::uint64_t>(
              obs::json_find_field(fields, "value")->nval));
    }
  }
  *record = std::move(r);
  return true;
}

Ledger::Ledger(std::string path) : path_(std::move(path)) {}

std::vector<RunRecord> Ledger::read() const {
  static const obs::Counter c_corrupt = obs::counter("ledger.corrupt_lines");
  std::vector<RunRecord> records;
  std::string text;
  std::string error;
  if (!read_file(path_, &text, &error)) return records;  // missing == empty
  for (const std::string& line : split_lines(text)) {
    RunRecord r;
    if (parse_run_record(line, &r, &error)) {
      records.push_back(std::move(r));
    } else {
      c_corrupt.inc();
    }
  }
  return records;
}

bool Ledger::append(RunRecord record, std::string* error) {
  static const obs::Counter c_appends = obs::counter("ledger.appends");
  static const obs::Counter c_errors = obs::counter("ledger.append_errors");
  if (path_.empty()) {
    if (error) *error = "ledger path is empty";
    c_errors.inc();
    return false;
  }
  // Serialize appenders the same way the store serializes writers; the
  // whole read-assign-rewrite must be one critical section or two racing
  // runs could claim the same run id.
  FileLock lock(path_ + ".lock");
  if (!lock.locked()) {
    if (error) *error = "cannot take ledger lock " + path_ + ".lock";
    c_errors.inc();
    return false;
  }
  std::string text;
  std::string read_error;
  read_file(path_, &text, &read_error);  // missing file reads as empty
  std::uint64_t next_run = 0;
  static const obs::Counter c_corrupt = obs::counter("ledger.corrupt_lines");
  std::vector<std::string> kept;
  for (const std::string& line : split_lines(text)) {
    RunRecord r;
    std::string line_error;
    if (parse_run_record(line, &r, &line_error)) {
      if (r.run >= next_run) next_run = r.run + 1;
      kept.push_back(line);
    } else {
      // A torn or foreign line is dropped from the rewrite — the ledger
      // self-repairs on the next append, like the store's corrupt blobs.
      c_corrupt.inc();
    }
  }
  record.run = next_run;
  if (record.timestamp.empty()) record.timestamp = iso8601_utc_now();
  const std::string line = run_record_to_json(record);
  if (!obs::validate_run_record_json(line, error)) {
    c_errors.inc();
    return false;
  }
  std::string out;
  for (const std::string& l : kept) {
    out += l;
    out.push_back('\n');
  }
  out += line;
  if (!atomic_write_file(path_, out, error)) {
    c_errors.inc();
    return false;
  }
  c_appends.inc();
  return true;
}

std::string resolve_ledger_path(const std::string& explicit_path) {
  if (!explicit_path.empty()) return explicit_path;
  Store* store = global_store();
  if (store != nullptr && store->usable()) return store->dir() + "/runs.jsonl";
  return std::string();
}

}  // namespace fstg::store
