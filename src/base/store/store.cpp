#include "base/store/store.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <sstream>

#include "base/log.h"
#include "base/obs/json_check.h"
#include "base/obs/metrics.h"
#include "base/store/fs_util.h"
#include "base/store/hash.h"

namespace fstg::store {

namespace {

constexpr char kMagic[8] = {'F', 'S', 'T', 'G', 'B', 'L', 'O', 'B'};

/// Why a blob failed the strict load path. Order matters: checks run
/// cheapest-first and the first failure names the counter.
enum class Corrupt {
  kNone,
  kIo,
  kTruncated,
  kMagic,
  kHeader,
  kVersion,
  kSchema,
  kKey,
  kHash,
};

const char* corrupt_name(Corrupt c) {
  switch (c) {
    case Corrupt::kNone: return "none";
    case Corrupt::kIo: return "io";
    case Corrupt::kTruncated: return "truncated";
    case Corrupt::kMagic: return "magic";
    case Corrupt::kHeader: return "header";
    case Corrupt::kVersion: return "version";
    case Corrupt::kSchema: return "schema";
    case Corrupt::kKey: return "key";
    case Corrupt::kHash: return "hash";
  }
  return "unknown";
}

void count_corrupt(Corrupt c) {
  // One registration per reason; the registry caps protect us anyway.
  obs::counter(std::string("store.corrupt.") + corrupt_name(c)).inc();
}

struct Header {
  std::uint32_t container = 0;
  std::uint32_t type_id = 0;
  std::uint32_t schema = 0;
  std::uint64_t key = 0;
  std::uint64_t payload_len = 0;
  std::uint64_t payload_hash = 0;
};

std::string encode_header(const Header& h, std::string_view payload) {
  std::string out(kBlobHeaderSize, '\0');
  char* p = out.data();
  std::memcpy(p, kMagic, 8);
  std::memcpy(p + 8, &h.container, 4);
  std::memcpy(p + 12, &h.type_id, 4);
  std::memcpy(p + 16, &h.schema, 4);
  const std::uint32_t pad = 0;
  std::memcpy(p + 20, &pad, 4);
  std::memcpy(p + 24, &h.key, 8);
  const std::uint64_t len = payload.size();
  std::memcpy(p + 32, &len, 8);
  const std::uint64_t phash = xxh64(payload);
  std::memcpy(p + 40, &phash, 8);
  const std::uint64_t hhash = xxh64(p, 48);
  std::memcpy(p + 48, &hhash, 8);
  return out;
}

/// Header-only validation (no payload hash). Returns the first failure.
Corrupt decode_header(std::string_view file, Header* h) {
  if (file.size() < kBlobHeaderSize) return Corrupt::kTruncated;
  const char* p = file.data();
  if (std::memcmp(p, kMagic, 8) != 0) return Corrupt::kMagic;
  std::uint64_t hhash_stored = 0;
  std::memcpy(&hhash_stored, p + 48, 8);
  if (xxh64(p, 48) != hhash_stored) return Corrupt::kHeader;
  std::memcpy(&h->container, p + 8, 4);
  std::memcpy(&h->type_id, p + 12, 4);
  std::memcpy(&h->schema, p + 16, 4);
  std::memcpy(&h->key, p + 24, 8);
  std::memcpy(&h->payload_len, p + 32, 8);
  std::memcpy(&h->payload_hash, p + 40, 8);
  if (h->container != kStoreFormatVersion) return Corrupt::kVersion;
  if (h->payload_len != file.size() - kBlobHeaderSize)
    return Corrupt::kTruncated;
  return Corrupt::kNone;
}

/// Full validation of one blob file's bytes against its own header.
Corrupt validate_blob(std::string_view file, Header* h) {
  const Corrupt c = decode_header(file, h);
  if (c != Corrupt::kNone) return c;
  const std::string_view payload = file.substr(kBlobHeaderSize);
  if (xxh64(payload) != h->payload_hash) return Corrupt::kHash;
  return Corrupt::kNone;
}

/// Stage tags become file-name components; anything exotic is mapped to
/// '_' so a tag can never escape the objects directory.
std::string sanitize_tag(const char* tag) {
  std::string s = tag ? tag : "blob";
  if (s.empty()) s = "blob";
  for (char& c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    if (!ok) c = '_';
  }
  return s;
}

bool is_blob_name(const std::string& name) {
  return name.size() > 5 && name.rfind(".blob") == name.size() - 5;
}

bool is_tmp_name(const std::string& name) {
  return name.find(".tmp.") != std::string::npos;
}

/// "<16hex>.<tag>.blob" -> tag; empty if the name does not fit the shape.
std::string tag_of_name(const std::string& name) {
  if (!is_blob_name(name) || name.size() < 17 + 5 || name[16] != '.')
    return "";
  return name.substr(17, name.size() - 17 - 5);
}

}  // namespace

Store::Store(std::string dir) : dir_(std::move(dir)) {
  std::string error;
  if (!make_dirs(dir_ + "/objects", &error)) {
    log_warn("cache: " + error + "; caching disabled for this run");
    obs::counter("store.open_failed").inc();
    return;
  }
  usable_ = true;
  obs::counter("store.opened").inc();
  // Informational meta record (self-validating, atomic, best-effort):
  // records the container version so a future reader can explain a cold
  // cache after a format bump. Load paths never trust this file.
  const std::string meta_path = dir_ + "/cache_meta.json";
  if (!file_exists(meta_path)) {
    const std::string json = cache_meta_json(StoreStats{});
    std::string verr;
    if (obs::validate_cache_meta_json(json, &verr))
      atomic_write_file(meta_path, json, &verr);
  }
}

std::string Store::object_dir(std::uint64_t key) const {
  return dir_ + "/objects/" + hash_hex(key).substr(0, 2);
}

std::string Store::object_path(std::uint64_t key, const char* tag) const {
  return object_dir(key) + "/" + hash_hex(key) + "." + sanitize_tag(tag) +
         ".blob";
}

bool Store::get(std::uint64_t key, std::uint32_t type_id, std::uint32_t schema,
                const char* tag, std::string* payload) {
  static const obs::Counter c_hit = obs::counter("store.hit");
  static const obs::Counter c_miss = obs::counter("store.miss");
  if (!usable_) {
    c_miss.inc();
    return false;
  }
  const std::string path = object_path(key, tag);
  if (!file_exists(path)) {
    c_miss.inc();
    return false;
  }
  std::string file;
  std::string error;
  Corrupt corrupt = Corrupt::kNone;
  Header h;
  if (!read_file(path, &file, &error)) {
    corrupt = Corrupt::kIo;
  } else {
    corrupt = validate_blob(file, &h);
    if (corrupt == Corrupt::kNone) {
      // Container-level integrity holds; now the addressing must agree.
      if (h.key != key)
        corrupt = Corrupt::kKey;
      else if (h.type_id != type_id || h.schema != schema)
        corrupt = Corrupt::kSchema;
    }
  }
  if (corrupt != Corrupt::kNone) {
    count_corrupt(corrupt);
    c_miss.inc();
    // Self-repair: drop the damaged blob so the recompute's put rewrites
    // it. Unlinking is safe against concurrent readers (POSIX keeps their
    // open file alive) and against writers (rename replaces by name).
    if (remove_file(path)) obs::counter("store.repair_unlinked").inc();
    log_warn("cache: corrupt blob (" +
             std::string(corrupt_name(corrupt)) + ") " + path +
             "; treating as miss");
    return false;
  }
  *payload = file.substr(kBlobHeaderSize);
  c_hit.inc();
  return true;
}

bool Store::put(std::uint64_t key, std::uint32_t type_id, std::uint32_t schema,
                const char* tag, std::string_view payload) {
  static const obs::Counter c_ok = obs::counter("store.put_ok");
  static const obs::Counter c_fail = obs::counter("store.put_fail");
  if (!usable_) {
    c_fail.inc();
    return false;
  }
  Header h;
  h.container = kStoreFormatVersion;
  h.type_id = type_id;
  h.schema = schema;
  h.key = key;
  std::string file = encode_header(h, payload);
  file.append(payload.data(), payload.size());

  std::string error;
  if (!make_dirs(object_dir(key), &error)) {
    c_fail.inc();
    log_warn("cache: " + error + "; skipping write");
    return false;
  }
  // Advisory writer lock: concurrent writers of the same key produce
  // identical bytes (keys are content hashes), so this mainly keeps puts
  // from racing gc's unlink pass.
  FileLock lock(dir_ + "/lock");
  if (!atomic_write_file(object_path(key, tag), file, &error)) {
    c_fail.inc();
    log_warn("cache: " + error + "; skipping write");
    return false;
  }
  c_ok.inc();
  return true;
}

std::string Store::checkpoint_dir(const std::string& campaign) {
  if (!usable_) return "";
  std::string safe = sanitize_tag(campaign.c_str());
  const std::string path = dir_ + "/checkpoints/" + safe;
  std::string error;
  if (!make_dirs(path, &error)) {
    log_warn("cache: " + error + "; checkpointing disabled");
    return "";
  }
  return path;
}

void Store::scan(std::vector<std::string>* blobs,
                 std::vector<std::string>* tmps) const {
  const std::string objects = dir_ + "/objects";
  for (const std::string& sub : list_dir(objects)) {
    const std::string subdir = objects + "/" + sub;
    if (!dir_exists(subdir)) {
      if (tmps && is_tmp_name(sub)) tmps->push_back(subdir);
      continue;
    }
    for (const std::string& name : list_dir(subdir)) {
      const std::string path = subdir + "/" + name;
      if (is_tmp_name(name)) {
        if (tmps) tmps->push_back(path);
      } else if (is_blob_name(name)) {
        if (blobs) blobs->push_back(path);
      }
    }
  }
}

StoreStats Store::stats() const {
  StoreStats s;
  if (!usable_) return s;
  std::vector<std::string> blobs, tmps;
  scan(&blobs, &tmps);
  s.tmp_files = tmps.size();
  std::vector<StoreStats::TypeStats> types;
  for (const std::string& path : blobs) {
    const std::int64_t size = file_size(path);
    if (size < 0) continue;
    ++s.blobs;
    s.bytes += static_cast<std::uint64_t>(size);
    std::string head;
    std::string error;
    Header h;
    // Header-level sniff only: stats must stay cheap on big caches.
    if (!read_file(path, &head, &error) ||
        decode_header(head, &h) != Corrupt::kNone)
      ++s.corrupt;
    const std::size_t slash = path.find_last_of('/');
    const std::string tag = tag_of_name(path.substr(slash + 1));
    auto it = std::find_if(types.begin(), types.end(),
                           [&](const auto& t) { return t.tag == tag; });
    if (it == types.end()) {
      types.push_back({tag, 1, static_cast<std::uint64_t>(size)});
    } else {
      ++it->blobs;
      it->bytes += static_cast<std::uint64_t>(size);
    }
  }
  std::sort(types.begin(), types.end(),
            [](const auto& a, const auto& b) { return a.tag < b.tag; });
  s.types = std::move(types);
  for (const std::string& name : list_dir(dir_ + "/checkpoints"))
    if (dir_exists(dir_ + "/checkpoints/" + name)) ++s.checkpoints;
  return s;
}

VerifyOutcome Store::verify() const {
  VerifyOutcome out;
  if (!usable_) return out;
  std::vector<std::string> blobs;
  scan(&blobs, nullptr);
  for (const std::string& path : blobs) {
    ++out.total;
    std::string file;
    std::string error;
    Header h;
    Corrupt c = read_file(path, &file, &error) ? validate_blob(file, &h)
                                               : Corrupt::kIo;
    if (c == Corrupt::kNone) {
      ++out.valid;
    } else {
      ++out.corrupt;
      out.corrupt_files.push_back(
          path.substr(dir_.size() + 1) + " (" + corrupt_name(c) + ")");
    }
  }
  std::sort(out.corrupt_files.begin(), out.corrupt_files.end());
  return out;
}

GcOutcome Store::gc(std::int64_t max_bytes) {
  GcOutcome out;
  if (!usable_) return out;
  FileLock lock(dir_ + "/lock");
  std::vector<std::string> blobs, tmps;
  scan(&blobs, &tmps);
  for (const std::string& path : tmps) {
    const std::int64_t size = file_size(path);
    if (remove_file(path)) {
      ++out.removed_tmp;
      if (size > 0) out.bytes_freed += static_cast<std::uint64_t>(size);
    }
  }
  struct Live {
    std::string path;
    std::int64_t mtime;
    std::int64_t size;
  };
  std::vector<Live> live;
  for (const std::string& path : blobs) {
    std::string file;
    std::string error;
    Header h;
    const Corrupt c = read_file(path, &file, &error) ? validate_blob(file, &h)
                                                     : Corrupt::kIo;
    if (c != Corrupt::kNone) {
      const std::int64_t size = file_size(path);
      if (remove_file(path)) {
        ++out.removed_corrupt;
        if (size > 0) out.bytes_freed += static_cast<std::uint64_t>(size);
      }
      continue;
    }
    live.push_back({path, file_mtime(path), file_size(path)});
  }
  if (max_bytes >= 0) {
    std::uint64_t total = 0;
    for (const Live& b : live) total += static_cast<std::uint64_t>(b.size);
    // Oldest-first eviction; mtime ties broken by path so gc is
    // deterministic for a given directory state.
    std::sort(live.begin(), live.end(), [](const Live& a, const Live& b) {
      return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
    });
    for (const Live& b : live) {
      if (total <= static_cast<std::uint64_t>(max_bytes)) break;
      if (remove_file(b.path)) {
        ++out.evicted;
        out.bytes_freed += static_cast<std::uint64_t>(b.size);
        total -= static_cast<std::uint64_t>(b.size);
      }
    }
  }
  return out;
}

std::string cache_meta_json(const StoreStats& stats) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"fstg.cache_meta.v1\",\n"
     << "  \"store_version\": " << kStoreFormatVersion << ",\n"
     << "  \"blobs\": " << stats.blobs << ",\n"
     << "  \"bytes\": " << stats.bytes << ",\n"
     << "  \"corrupt\": " << stats.corrupt << ",\n"
     << "  \"tmp_files\": " << stats.tmp_files << ",\n"
     << "  \"checkpoints\": " << stats.checkpoints << ",\n"
     << "  \"types\": [\n";
  for (std::size_t i = 0; i < stats.types.size(); ++i) {
    const StoreStats::TypeStats& t = stats.types[i];
    os << "    {\"tag\": \"" << t.tag << "\", \"blobs\": " << t.blobs
       << ", \"bytes\": " << t.bytes << "}"
       << (i + 1 < stats.types.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

namespace {

std::mutex g_global_mu;
std::unique_ptr<Store> g_global_store;

}  // namespace

Store* global_store() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  return g_global_store.get();
}

bool open_global_store(const std::string& dir, std::string* error) {
  auto s = std::make_unique<Store>(dir);
  if (!s->usable()) {
    if (error) *error = "cannot open cache directory " + dir;
    return false;
  }
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_global_store = std::move(s);
  return true;
}

void close_global_store() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_global_store.reset();
}

}  // namespace fstg::store
