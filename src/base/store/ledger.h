#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fstg::store {

/// --- Append-only run ledger ----------------------------------------------
///
/// One JSONL file (`runs.jsonl`, by default under the cache directory)
/// holding one schema-versioned record per pipeline or bench run: what ran,
/// against which circuit and configuration, how long each stage took, the
/// key counters, and how it exited. The ledger is the durable half of the
/// telemetry layer — the live `--telemetry-out` file shows the run in
/// flight, the ledger remembers it afterwards, and `fstg report` aggregates
/// the history into timing trends and regression verdicts.
///
/// Appends go through the store's crash-safe path: the whole file is read,
/// the new line added, and the result atomically rewritten under the
/// advisory `<path>.lock` flock. Ledgers are small (one line per run), so
/// the rewrite costs nothing and buys the same guarantee as every other
/// durable file here: a reader sees complete records or nothing, never a
/// torn tail. Lines that fail to parse (e.g. a record appended by a future
/// schema) are skipped on read and counted under `ledger.corrupt_lines` —
/// a damaged history degrades, it never takes a run down.

/// One stage's accumulated wall time within a run (from obs::stage_timings).
struct RunStage {
  std::string stage;
  double ms = 0.0;
};

/// One ledger line (schema fstg.run.v1, schemas/fstg_run.schema.json).
struct RunRecord {
  std::uint64_t run = 0;        ///< ledger-assigned, dense from 0
  std::string timestamp;        ///< ISO-8601 UTC, assigned at append
  std::string tool;             ///< "fstg", "fstg_bench", ...
  std::string command;          ///< subcommand / bench mode
  std::string circuit;          ///< "" when the run is not circuit-scoped
  std::string config_hash;      ///< 16 hex digits (KeyBuilder digest)
  int exit_code = 0;
  double wall_ms = 0.0;
  std::uint64_t budget_trips = 0;
  std::vector<RunStage> stages;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Render one record as a single JSONL line (newline-terminated), schema
/// fstg.run.v1. Self-checking: appenders validate with
/// obs::validate_run_record_json before writing.
std::string run_record_to_json(const RunRecord& record);

/// Parse one ledger line. False (with *error) on malformed or wrong-schema
/// input; the caller decides whether that is fatal (tests) or skippable
/// (ledger reads).
bool parse_run_record(const std::string& line, RunRecord* record,
                      std::string* error);

class Ledger {
 public:
  explicit Ledger(std::string path);

  const std::string& path() const { return path_; }

  /// Append `record` (its `run` and `timestamp` are assigned here: run ids
  /// are dense from 0, max-existing + 1). Returns false with *error on
  /// validation or filesystem failure; the ledger file is never left torn.
  bool append(RunRecord record, std::string* error);

  /// All parseable records, in file order. Corrupt lines are skipped and
  /// counted (ledger.corrupt_lines); a missing file reads as empty.
  std::vector<RunRecord> read() const;

 private:
  std::string path_;
};

/// Resolve the ledger path from the CLI flags: an explicit --ledger wins;
/// else `runs.jsonl` inside the open global store's directory; else empty
/// (no ledger configured — appends are skipped).
std::string resolve_ledger_path(const std::string& explicit_path);

}  // namespace fstg::store
