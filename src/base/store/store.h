#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fstg::store {

/// --- Content-addressed, crash-safe artifact store ------------------------
///
/// On-disk layout under one cache directory:
///
///   <dir>/cache_meta.json            fstg.cache_meta.v1 (informational)
///   <dir>/lock                       advisory writer lock (flock)
///   <dir>/objects/<hh>/<16hex>.<tag>.blob
///   <dir>/checkpoints/<campaign>/<record>.done
///
/// A blob is addressed by the 64-bit XXH64 of its *inputs* (canonical
/// source text + every option that changes the artifact + the artifact's
/// schema version), so identical derivations across runs land on the same
/// file. Writes are crash-consistent (same-directory temp + fsync + atomic
/// rename + directory fsync) and serialized by an advisory flock; reads
/// never lock — rename atomicity guarantees they see a whole blob or none.
///
/// The load path is strict and non-throwing: truncation, a smashed or
/// bit-flipped header, container/type/schema version skew, a key that does
/// not match the file name, or a payload hash mismatch all classify the
/// blob as corrupt — counted under store.corrupt.<reason>, unlinked
/// (self-repair), and reported to the caller as a plain miss. Corruption
/// can therefore cost a recompute but can never change a result or surface
/// an error to the pipeline.

/// Container format version: bumped when the header layout changes. A blob
/// written by any other container version is a miss (store.corrupt.version).
inline constexpr std::uint32_t kStoreFormatVersion = 1;

/// Fixed blob header size: magic(8) + container(4) + type(4) + schema(4) +
/// pad(4) + key(8) + payload_len(8) + payload_hash(8) + header_hash(8).
inline constexpr std::size_t kBlobHeaderSize = 56;

struct StoreStats {
  std::uint64_t blobs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t corrupt = 0;    ///< header-level damage found while scanning
  std::uint64_t tmp_files = 0;  ///< orphaned temporaries (crash leftovers)
  std::uint64_t checkpoints = 0;
  struct TypeStats {
    std::string tag;
    std::uint64_t blobs = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<TypeStats> types;  ///< tag-sorted
};

struct VerifyOutcome {
  std::uint64_t total = 0;
  std::uint64_t valid = 0;
  std::uint64_t corrupt = 0;
  std::vector<std::string> corrupt_files;  ///< paths relative to the dir
};

struct GcOutcome {
  std::uint64_t removed_corrupt = 0;
  std::uint64_t removed_tmp = 0;
  std::uint64_t evicted = 0;  ///< valid blobs removed to meet max_bytes
  std::uint64_t bytes_freed = 0;
};

class Store {
 public:
  /// Opens (and creates) the cache directory. Never throws: if the
  /// directory cannot be created or written, the store is unusable — every
  /// get is a miss, every put a counted no-op — and the pipeline proceeds
  /// exactly as if no cache were configured.
  explicit Store(std::string dir);

  const std::string& dir() const { return dir_; }
  bool usable() const { return usable_; }

  /// Strict load. True only for a blob that passes every integrity check
  /// and matches (type_id, schema). `tag` is the human-readable stage name
  /// used in the object file name.
  bool get(std::uint64_t key, std::uint32_t type_id, std::uint32_t schema,
           const char* tag, std::string* payload);

  /// Durable store. False (with counters, never an exception) on any
  /// filesystem failure — a read-only or full cache degrades to recompute.
  bool put(std::uint64_t key, std::uint32_t type_id, std::uint32_t schema,
           const char* tag, std::string_view payload);

  /// Directory for one campaign's checkpoint records (created on demand;
  /// empty string if the store is unusable or creation failed).
  std::string checkpoint_dir(const std::string& campaign);

  StoreStats stats() const;
  VerifyOutcome verify() const;
  /// Removes corrupt blobs and orphaned temporaries; when max_bytes >= 0
  /// also evicts oldest-first until the object payload total fits.
  GcOutcome gc(std::int64_t max_bytes = -1);

 private:
  std::string object_dir(std::uint64_t key) const;
  std::string object_path(std::uint64_t key, const char* tag) const;
  /// All blob paths (absolute), with sizes; skips temporaries.
  void scan(std::vector<std::string>* blobs,
            std::vector<std::string>* tmps) const;

  std::string dir_;
  bool usable_ = false;
};

/// Render `stats` as schema fstg.cache_meta.v1 JSON
/// (schemas/fstg_cache_meta.schema.json). Self-checking writers validate
/// the text with obs::validate_cache_meta_json before emitting it.
std::string cache_meta_json(const StoreStats& stats);

/// --- Process-global store (the --cache-dir flag) -------------------------
///
/// Tools install one store per process; library stages pick it up through
/// `resolve(nullptr)`. Tests pass explicit stores instead.
Store* global_store();
/// Open `dir` as the global store. Returns false (with *error) if the
/// directory is unusable; the previous global store, if any, is replaced
/// only on success.
bool open_global_store(const std::string& dir, std::string* error);
void close_global_store();

/// The store a stage should use: the explicit one if given, else the
/// process-global one, else nullptr (caching disabled).
inline Store* resolve(Store* explicit_store) {
  return explicit_store ? explicit_store : global_store();
}

}  // namespace fstg::store
