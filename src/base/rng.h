#pragma once

#include <cstdint>
#include <string_view>

namespace fstg {

/// Deterministic 64-bit RNG (xoshiro256** seeded via splitmix64).
/// Used everywhere randomness is needed so every run, test, and synthetic
/// benchmark is reproducible from a seed or a name.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Seed from a string (e.g. a benchmark circuit name) via FNV-1a.
  static Rng from_name(std::string_view name);

  std::uint64_t next();

  /// Uniform in [0, bound) using Lemire's method; bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den);

 private:
  std::uint64_t s_[4];
};

}  // namespace fstg
