#include "base/parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "base/obs/metrics.h"
#include "base/obs/trace.h"
#include "base/timer.h"

namespace fstg::parallel {

namespace {

std::atomic<int> g_default_threads{-1};  // -1 = not yet resolved
thread_local bool t_in_region = false;

/// Lazily grown pool of detached-on-exit worker threads consuming a shared
/// job queue. parallel_for layers the per-slot work-stealing deques on top;
/// the pool itself only needs to hand a thread to each slot.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void ensure_workers(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    n = std::min(n, kMaxThreads);
    while (static_cast<int>(threads_.size()) < n)
      threads_.emplace_back([this] { worker_main(); });
  }

  void submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.push_back(std::move(job));
    }
    cv_.notify_one();
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

 private:
  void worker_main() {
    t_in_region = false;
    // Worker utilization: time blocked on the queue vs. time running jobs.
    // Scrapes derive idleness as pool.idle_us / (pool.idle_us +
    // pool.busy_us); both are flushed once per wait/job, not per tick.
    static const obs::Counter c_idle = obs::counter("pool.idle_us");
    static const obs::Counter c_busy = obs::counter("pool.busy_us");
    for (;;) {
      std::function<void()> job;
      {
        Timer idle;
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
        c_idle.add(static_cast<std::uint64_t>(idle.seconds() * 1e6));
        if (jobs_.empty()) return;  // stop requested and queue drained
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      Timer busy;
      job();
      c_busy.add(static_cast<std::uint64_t>(busy.seconds() * 1e6));
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

/// Shared state of one parallel_for region. shared_ptr-owned because pool
/// jobs can outlive the parallel_for scope only if the caller threw while
/// waiting — shared ownership makes that path safe too.
struct ForState {
  explicit ForState(int slots)
      : queues(static_cast<std::size_t>(slots)),
        locks(static_cast<std::size_t>(slots)) {}

  std::vector<std::deque<std::pair<std::size_t, std::size_t>>> queues;
  std::deque<std::mutex> locks;  // deque: mutex is not movable
  std::atomic<int> pending{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::mutex error_mu;
  std::exception_ptr error;
};

void run_slot(const std::shared_ptr<ForState>& state, int slot, int slots,
              const std::function<void(int, std::size_t, std::size_t)>& fn) {
  const bool was_in_region = t_in_region;
  t_in_region = true;
  obs::Span span("pool.slot", "slot " + std::to_string(slot));
  std::uint64_t chunks = 0, steals = 0;
  for (;;) {
    std::pair<std::size_t, std::size_t> range;
    bool got = false;
    {
      // Own queue first (front = dealing order, keeps chunks cache-warm).
      std::lock_guard<std::mutex> lock(state->locks[static_cast<std::size_t>(slot)]);
      auto& q = state->queues[static_cast<std::size_t>(slot)];
      if (!q.empty()) {
        range = q.front();
        q.pop_front();
        got = true;
      }
    }
    for (int k = 1; !got && k < slots; ++k) {
      // Steal from the *back* of a victim's deque: the chunks it would
      // reach last, minimizing contention with its own front pops.
      const int victim = (slot + k) % slots;
      std::lock_guard<std::mutex> lock(
          state->locks[static_cast<std::size_t>(victim)]);
      auto& q = state->queues[static_cast<std::size_t>(victim)];
      if (!q.empty()) {
        range = q.back();
        q.pop_back();
        got = true;
        ++steals;
      }
    }
    if (!got) break;
    ++chunks;
    try {
      fn(slot, range.first, range.second);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->error_mu);
      if (!state->error) state->error = std::current_exception();
      break;  // abandon this slot's remaining work; region reports failure
    }
  }
  t_in_region = was_in_region;
  static const obs::Counter c_chunks = obs::counter("pool.chunks");
  static const obs::Counter c_steals = obs::counter("pool.steals");
  c_chunks.add(chunks);
  c_steals.add(steals);
  if (state->pending.fetch_sub(1) == 1) {
    std::lock_guard<std::mutex> lock(state->done_mu);
    state->done_cv.notify_all();
  }
}

}  // namespace

int hardware_threads() {
#if defined(__linux__)
  // Respect the CPU affinity mask (containers and taskset commonly pin the
  // process to fewer CPUs than the machine has): oversubscribing a pinned
  // process just context-switches workers against each other — the cause of
  // the parallel-slower-than-serial fault-sim regression on 1-CPU boxes.
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return n;
  }
#endif
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void set_default_threads(int n) {
  g_default_threads.store(std::clamp(n, 0, kMaxThreads));
}

int default_threads() {
  int n = g_default_threads.load();
  if (n < 0) {
    n = hardware_threads();
    g_default_threads.store(n);
  }
  return n;
}

int resolve_threads(int requested) {
  if (requested < 0) requested = default_threads();
  return std::clamp(requested, 1, kMaxThreads);
}

bool in_parallel_region() { return t_in_region; }

void parallel_for(std::size_t n, std::size_t grain, int threads,
                  const std::function<void(int, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (n + grain - 1) / grain;
  int slots = std::min<std::size_t>(
      static_cast<std::size_t>(resolve_threads(threads)), chunks);
  // Serial fallback: one slot, or a nested region (running chunks inline on
  // the caller keeps nested parallel code deadlock-free and bounded).
  if (slots <= 1 || t_in_region) {
    const bool was_in_region = t_in_region;
    t_in_region = true;
    try {
      fn(0, 0, n);
    } catch (...) {
      t_in_region = was_in_region;
      throw;
    }
    t_in_region = was_in_region;
    return;
  }

  static const obs::Counter c_regions = obs::counter("pool.regions");
  c_regions.inc();
  obs::Span region_span("pool.region", std::to_string(n) + " items / " +
                                           std::to_string(slots) + " slots");
  auto state = std::make_shared<ForState>(slots);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(n, begin + grain);
    state->queues[c % static_cast<std::size_t>(slots)].emplace_back(begin, end);
  }
  state->pending.store(slots);

  Pool& pool = Pool::instance();
  pool.ensure_workers(slots - 1);
  for (int s = 1; s < slots; ++s)
    pool.submit([state, s, slots, fn] { run_slot(state, s, slots, fn); });
  run_slot(state, 0, slots, fn);  // the caller is slot 0

  std::unique_lock<std::mutex> lock(state->done_mu);
  state->done_cv.wait(lock, [&] { return state->pending.load() == 0; });
  lock.unlock();
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace fstg::parallel
