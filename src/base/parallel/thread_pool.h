#pragma once

#include <cstddef>
#include <functional>

namespace fstg::parallel {

/// Number of hardware threads (always >= 1; std::thread::hardware_concurrency
/// with a serial fallback when the runtime reports 0).
int hardware_threads();

/// Process-wide default worker count for parallel regions whose caller does
/// not request an explicit count. Starts at hardware_threads(); 0 or 1 means
/// serial. The CLI's --threads flag sets this once at startup.
void set_default_threads(int n);
int default_threads();

/// Resolve a per-call thread request into an effective slot count:
/// negative -> default_threads(), 0 -> 1 (serial fallback), otherwise the
/// request itself (capped at kMaxThreads).
int resolve_threads(int requested);

/// True while the calling thread is executing inside a parallel_for slot
/// (pool worker or participating caller). Nested parallel_for calls detect
/// this and run inline on the caller, so parallel code can safely call into
/// other parallel code without deadlocking or oversubscribing.
bool in_parallel_region();

/// Run fn(slot, begin, end) over a partition of [0, n) across up to
/// `threads` slots (pool workers plus the calling thread, which always
/// participates as slot 0). The range is split into chunks of ~grain
/// indices, dealt round-robin to per-slot deques; a slot that drains its own
/// deque steals from the back of the others', so uneven per-index cost
/// (fault simulation with fault dropping is very uneven) still balances.
///
/// `slot` is in [0, resolve_threads(threads)) and is stable for the duration
/// of one chunk, so callers can keep per-slot scratch state (for example a
/// thread-local simulator) indexed by it. Determinism contract: fn must
/// write only to disjoint, index-addressed locations; which slot processes
/// which chunk is *not* deterministic, so any order-sensitive reduction must
/// happen on the caller after parallel_for returns.
///
/// Exceptions thrown by fn are captured; the first one is rethrown on the
/// caller once every slot has stopped.
void parallel_for(std::size_t n, std::size_t grain, int threads,
                  const std::function<void(int, std::size_t, std::size_t)>& fn);

/// Hard cap on slots per region (and on pool threads overall).
inline constexpr int kMaxThreads = 256;

}  // namespace fstg::parallel
