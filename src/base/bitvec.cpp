#include "base/bitvec.h"

#include <bit>

namespace fstg {

namespace {
std::size_t words_for(std::size_t n) { return (n + 63) >> 6; }
}  // namespace

BitVec::BitVec(std::size_t n, bool value) { resize(n, value); }

void BitVec::resize(std::size_t n, bool value) {
  const std::size_t old_size = size_;
  size_ = n;
  words_.resize(words_for(n), value ? ~std::uint64_t{0} : 0);
  if (value && old_size < n) {
    // Bits between old_size and the end of the old last word must be raised.
    for (std::size_t i = old_size; i < n && (i & 63) != 0; ++i) set(i);
    std::size_t first_fresh_word = words_for(old_size);
    for (std::size_t w = first_fresh_word; w < words_.size(); ++w)
      words_[w] = ~std::uint64_t{0};
  }
  trim_tail();
}

void BitVec::clear() {
  size_ = 0;
  words_.clear();
}

void BitVec::set_all() {
  for (auto& w : words_) w = ~std::uint64_t{0};
  trim_tail();
}

void BitVec::reset_all() {
  for (auto& w : words_) w = 0;
}

void BitVec::trim_tail() {
  if (size_ & 63) {
    if (!words_.empty())
      words_.back() &= (std::uint64_t{1} << (size_ & 63)) - 1;
  }
}

std::size_t BitVec::count() const {
  std::size_t c = 0;
  for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool BitVec::any() const {
  for (auto w : words_)
    if (w) return true;
  return false;
}

std::size_t BitVec::find_first(std::size_t from) const {
  if (from >= size_) return npos;
  std::size_t w = from >> 6;
  std::uint64_t word = words_[w] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (word) {
      std::size_t bit = (w << 6) +
                        static_cast<std::size_t>(std::countr_zero(word));
      return bit < size_ ? bit : npos;
    }
    if (++w >= words_.size()) return npos;
    word = words_[w];
  }
}

BitVec& BitVec::operator|=(const BitVec& o) {
  for (std::size_t i = 0; i < words_.size() && i < o.words_.size(); ++i)
    words_[i] |= o.words_[i];
  trim_tail();
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& o) {
  for (std::size_t i = 0; i < words_.size(); ++i)
    words_[i] &= i < o.words_.size() ? o.words_[i] : 0;
  return *this;
}

BitVec& BitVec::operator^=(const BitVec& o) {
  for (std::size_t i = 0; i < words_.size() && i < o.words_.size(); ++i)
    words_[i] ^= o.words_[i];
  trim_tail();
  return *this;
}

BitVec& BitVec::and_not(const BitVec& o) {
  for (std::size_t i = 0; i < words_.size() && i < o.words_.size(); ++i)
    words_[i] &= ~o.words_[i];
  return *this;
}

bool BitVec::operator==(const BitVec& o) const {
  return size_ == o.size_ && words_ == o.words_;
}

bool BitVec::intersects(const BitVec& o) const {
  const std::size_t n = std::min(words_.size(), o.words_.size());
  for (std::size_t i = 0; i < n; ++i)
    if (words_[i] & o.words_[i]) return true;
  return false;
}

bool BitVec::is_subset_of(const BitVec& o) const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t ow = i < o.words_.size() ? o.words_[i] : 0;
    if (words_[i] & ~ow) return false;
  }
  return true;
}

}  // namespace fstg
