#include "base/robust/budget.h"

#include <algorithm>

#include "base/obs/metrics.h"

namespace fstg::robust {

namespace {

struct Injection {
  std::string site;
  std::uint64_t after_ticks = 0;
};

thread_local std::vector<Injection> g_injections;
thread_local std::vector<std::string> g_sites_seen;

void log_site(const char* site) {
  for (const std::string& s : g_sites_seen)
    if (s == site) return;
  // Hard cap: the site set is a handful of compile-time literals; a cap
  // keeps a buggy dynamic caller from growing this without bound.
  if (g_sites_seen.size() < 256) g_sites_seen.emplace_back(site);
}

}  // namespace

const char* trip_name(BudgetTrip trip) {
  switch (trip) {
    case BudgetTrip::kNone: return "none";
    case BudgetTrip::kDeadline: return "deadline";
    case BudgetTrip::kExpansions: return "expansions";
    case BudgetTrip::kMemory: return "memory";
    case BudgetTrip::kInjected: return "injected";
  }
  return "unknown";
}

RunGuard::RunGuard(const Budget& budget, const char* site)
    : budget_(budget), site_(site) {
  log_site(site);
  static const obs::Counter c_guards = obs::counter("budget.guards");
  c_guards.inc();
  for (const Injection& inj : g_injections)
    if (inj.site == site) inject_after_ = std::min(inject_after_, inj.after_ticks);
}

RunGuard::~RunGuard() {
  // One registry write per guard lifetime, never per tick: the tick fast
  // path stays free of instrumentation.
  static const obs::Counter c_expansions = obs::counter("budget.expansions");
  c_expansions.add(expansions());
  const BudgetTrip t = trip();
  if (t != BudgetTrip::kNone)
    obs::counter(std::string("budget.trips.") + trip_name(t)).inc();
}

void RunGuard::trip_once(BudgetTrip trip) {
  BudgetTrip expected = BudgetTrip::kNone;
  trip_.compare_exchange_strong(expected, trip, std::memory_order_relaxed);
}

bool RunGuard::tick(std::uint64_t work) {
  if (exhausted()) return false;
  const std::uint64_t expansions =
      expansions_.fetch_add(work, std::memory_order_relaxed) + work;
  const std::uint64_t ticks =
      ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (ticks > inject_after_) {
    trip_once(BudgetTrip::kInjected);
    return false;
  }
  if (budget_.max_expansions != 0 && expansions > budget_.max_expansions) {
    trip_once(BudgetTrip::kExpansions);
    return false;
  }
  if (budget_.time_budget_ms > 0.0) {
    // Amortized deadline check: whichever thread wins the CAS pays for the
    // clock read; the rest skip ahead to the next interval.
    std::uint64_t next = next_deadline_check_.load(std::memory_order_relaxed);
    if (ticks >= next &&
        next_deadline_check_.compare_exchange_strong(
            next, ticks + kDeadlineCheckInterval, std::memory_order_relaxed)) {
      if (timer_.seconds() * 1000.0 > budget_.time_budget_ms) {
        trip_once(BudgetTrip::kDeadline);
        return false;
      }
    }
  }
  return true;
}

bool RunGuard::charge_memory(std::size_t bytes) {
  if (exhausted()) return false;
  const std::size_t total =
      memory_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (budget_.max_memory_bytes != 0 && total > budget_.max_memory_bytes) {
    trip_once(BudgetTrip::kMemory);
    return false;
  }
  return true;
}

Status RunGuard::status() const {
  if (!exhausted()) return Status::ok();
  return Status::error(Code::kBudgetExhausted,
                       std::string("budget exhausted at ") + site_ + " (" +
                           trip_name(trip()) + " limit, " +
                           std::to_string(expansions()) + " expansions)");
}

void inject_budget_exhaustion(const std::string& site,
                              std::uint64_t after_ticks) {
  g_injections.push_back({site, after_ticks});
}

void clear_budget_injections() { g_injections.clear(); }

InjectionSnapshot injections_snapshot() {
  InjectionSnapshot snapshot;
  snapshot.armed.reserve(g_injections.size());
  for (const Injection& inj : g_injections)
    snapshot.armed.emplace_back(inj.site, inj.after_ticks);
  return snapshot;
}

void install_injections(const InjectionSnapshot& snapshot) {
  g_injections.clear();
  for (const auto& [site, after_ticks] : snapshot.armed)
    g_injections.push_back({site, after_ticks});
}

const std::vector<std::string>& guard_sites_seen() { return g_sites_seen; }

void clear_guard_site_log() { g_sites_seen.clear(); }

}  // namespace fstg::robust
