#include "base/robust/budget.h"

#include <algorithm>

namespace fstg::robust {

namespace {

struct Injection {
  std::string site;
  std::uint64_t after_ticks = 0;
};

thread_local std::vector<Injection> g_injections;
thread_local std::vector<std::string> g_sites_seen;

void log_site(const char* site) {
  for (const std::string& s : g_sites_seen)
    if (s == site) return;
  // Hard cap: the site set is a handful of compile-time literals; a cap
  // keeps a buggy dynamic caller from growing this without bound.
  if (g_sites_seen.size() < 256) g_sites_seen.emplace_back(site);
}

}  // namespace

const char* trip_name(BudgetTrip trip) {
  switch (trip) {
    case BudgetTrip::kNone: return "none";
    case BudgetTrip::kDeadline: return "deadline";
    case BudgetTrip::kExpansions: return "expansions";
    case BudgetTrip::kMemory: return "memory";
    case BudgetTrip::kInjected: return "injected";
  }
  return "unknown";
}

RunGuard::RunGuard(const Budget& budget, const char* site)
    : budget_(budget), site_(site) {
  log_site(site);
  for (const Injection& inj : g_injections)
    if (inj.site == site) inject_after_ = std::min(inject_after_, inj.after_ticks);
}

bool RunGuard::tick(std::uint64_t work) {
  if (trip_ != BudgetTrip::kNone) return false;
  expansions_ += work;
  ++ticks_;
  if (ticks_ > inject_after_) {
    trip_ = BudgetTrip::kInjected;
    return false;
  }
  if (budget_.max_expansions != 0 && expansions_ > budget_.max_expansions) {
    trip_ = BudgetTrip::kExpansions;
    return false;
  }
  if (budget_.time_budget_ms > 0.0 && ticks_ >= next_deadline_check_) {
    next_deadline_check_ = ticks_ + kDeadlineCheckInterval;
    if (timer_.seconds() * 1000.0 > budget_.time_budget_ms) {
      trip_ = BudgetTrip::kDeadline;
      return false;
    }
  }
  return true;
}

bool RunGuard::charge_memory(std::size_t bytes) {
  if (trip_ != BudgetTrip::kNone) return false;
  memory_bytes_ += bytes;
  if (budget_.max_memory_bytes != 0 &&
      memory_bytes_ > budget_.max_memory_bytes) {
    trip_ = BudgetTrip::kMemory;
    return false;
  }
  return true;
}

Status RunGuard::status() const {
  if (trip_ == BudgetTrip::kNone) return Status::ok();
  return Status::error(Code::kBudgetExhausted,
                       std::string("budget exhausted at ") + site_ + " (" +
                           trip_name(trip_) + " limit, " +
                           std::to_string(expansions_) + " expansions)");
}

void inject_budget_exhaustion(const std::string& site,
                              std::uint64_t after_ticks) {
  g_injections.push_back({site, after_ticks});
}

void clear_budget_injections() { g_injections.clear(); }

const std::vector<std::string>& guard_sites_seen() { return g_sites_seen; }

void clear_guard_site_log() { g_sites_seen.clear(); }

}  // namespace fstg::robust
