#pragma once

#include <source_location>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace fstg::robust {

/// Machine-readable failure category carried by every Status. Codes are
/// coarse on purpose: callers branch on them (retry, degrade, abort), while
/// the message + context chain carry the human-readable detail.
enum class Code {
  kOk = 0,
  kInvalidArgument,   ///< caller violated a precondition
  kParseError,        ///< malformed input text (KISS2/BLIF/test file)
  kIoError,           ///< file system failure (open/read/write)
  kBudgetExhausted,   ///< a RunGuard tripped; partial work may exist
  kUnsupported,       ///< valid input outside what this build handles
  kInternal,          ///< invariant violation inside the library
};

const char* code_name(Code code);

/// Structured error: code + message + source location + a context chain
/// pushed by each layer the error crosses (innermost first). The default
/// constructed Status is OK, so `return {};` means success.
class Status {
 public:
  Status() = default;

  static Status ok() { return Status(); }
  static Status error(
      Code code, std::string message,
      std::source_location loc = std::source_location::current()) {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    s.file_ = loc.file_name();
    s.line_ = static_cast<int>(loc.line());
    return s;
  }

  bool is_ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }
  const char* file() const { return file_; }
  int line() const { return line_; }
  const std::vector<std::string>& context() const { return context_; }

  /// Push one frame of context ("deriving UIO sequences", "circuit lion").
  /// No-op on an OK status, so it composes with unconditional returns.
  Status& with_context(std::string frame) {
    if (!is_ok()) context_.push_back(std::move(frame));
    return *this;
  }

  /// "budget-exhausted: <msg> [uio.cpp:57] (while <inner>; while <outer>)"
  std::string to_string() const;

 private:
  Code code_ = Code::kOk;
  std::string message_;
  const char* file_ = "";
  int line_ = 0;
  std::vector<std::string> context_;
};

/// Value-or-Status. The library's module boundaries return Result<T> so a
/// failed stage carries a typed, contextualized error instead of unwinding
/// through bare exceptions.
template <typename T>
class Result {
 public:
  Result(T value) : store_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : store_(std::move(status)) {}  // NOLINT

  bool is_ok() const { return std::holds_alternative<T>(store_); }

  const Status& status() const {
    static const Status kOk;
    return is_ok() ? kOk : std::get<Status>(store_);
  }

  const T& value() const { return std::get<T>(store_); }
  T& value() { return std::get<T>(store_); }
  /// Move the value out (call once, after checking is_ok()).
  T take() { return std::move(std::get<T>(store_)); }

  Result& with_context(std::string frame) {
    if (!is_ok()) std::get<Status>(store_).with_context(std::move(frame));
    return *this;
  }

 private:
  std::variant<T, Status> store_;
};

}  // namespace fstg::robust
