#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/robust/status.h"
#include "base/timer.h"

namespace fstg::robust {

/// Resource envelope for one run of an expensive kernel (UIO search, PODEM,
/// fault simulation, bridging enumeration, reachability). Every limit is
/// opt-in: 0 means unlimited, so a default Budget changes nothing. The
/// paper's procedure degrades gracefully when a search comes back empty
/// (no UIO => scan-out); Budget is the engineering-level version of the
/// same discipline: exhaustion produces a typed partial result, never a
/// hang or an OOM.
struct Budget {
  double time_budget_ms = 0.0;       ///< wall-clock deadline; 0 = unlimited
  std::uint64_t max_expansions = 0;  ///< node/step expansions; 0 = unlimited
  std::size_t max_memory_bytes = 0;  ///< peak-allocation estimate; 0 = unlimited

  bool unlimited() const {
    return time_budget_ms <= 0.0 && max_expansions == 0 &&
           max_memory_bytes == 0;
  }
};

/// Which limit a RunGuard tripped on (kInjected = test-only fault injection).
enum class BudgetTrip : std::uint8_t {
  kNone = 0,
  kDeadline,
  kExpansions,
  kMemory,
  kInjected,
};

const char* trip_name(BudgetTrip trip);

/// Per-run enforcement of a Budget, checked at kernel loop heads.
///
///   RunGuard guard(budget, "uio.search");
///   while (...) {
///     if (!guard.tick(children)) break;   // exhausted: return partial
///     ...
///   }
///
/// `tick` is cheap: the wall clock is only read every few thousand calls.
/// Once a guard trips it stays tripped (`exhausted()`), and `status()`
/// renders the trip as a structured kBudgetExhausted error naming the site.
///
/// Thread safety: a single RunGuard may be shared by the workers of one
/// parallel kernel (the parallel fault simulator ticks one guard from every
/// worker). Counters are relaxed atomics, the trip flag is a sticky
/// compare-exchange (the first limit to trip wins and every subsequent tick
/// on every thread returns false), so the guard doubles as the kernel's
/// cooperative-cancellation flag. Construction and `status()` remain
/// single-threaded: create the guard before the parallel region and read
/// the status after it joins.
///
/// Guard sites have stable string names so the fault-injection test harness
/// can force exhaustion at any specific site deterministically (see
/// `inject_budget_exhaustion`).
class RunGuard {
 public:
  RunGuard(const Budget& budget, const char* site);
  /// Flushes this run's consumption into the observability registry
  /// (counter `budget.expansions`, and `budget.trips.<reason>` if tripped).
  ~RunGuard();

  /// Charge `work` expansions and re-check every limit. Returns true while
  /// the run is still within budget. Sticky: keeps returning false after
  /// the first trip (on any thread).
  bool tick(std::uint64_t work = 1);

  /// Charge an allocation estimate against max_memory_bytes. Call before
  /// the allocation itself so the guard can veto it. Returns true while
  /// within budget.
  bool charge_memory(std::size_t bytes);

  bool exhausted() const {
    return trip_.load(std::memory_order_relaxed) != BudgetTrip::kNone;
  }
  BudgetTrip trip() const { return trip_.load(std::memory_order_relaxed); }
  const char* site() const { return site_; }
  std::uint64_t expansions() const {
    return expansions_.load(std::memory_order_relaxed);
  }
  std::size_t memory_bytes() const {
    return memory_bytes_.load(std::memory_order_relaxed);
  }

  /// kOk while within budget; otherwise kBudgetExhausted naming the site
  /// and the limit that tripped.
  Status status() const;

 private:
  static constexpr std::uint64_t kDeadlineCheckInterval = 4096;

  /// First trip wins; later trips on other threads are dropped.
  void trip_once(BudgetTrip trip);

  Budget budget_;
  const char* site_;
  Timer timer_;
  std::atomic<std::uint64_t> expansions_{0};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> next_deadline_check_{1};  // check early, amortize
  std::atomic<std::size_t> memory_bytes_{0};
  std::atomic<BudgetTrip> trip_{BudgetTrip::kNone};
  std::uint64_t inject_after_ = UINT64_MAX;  ///< tick count; resolved at ctor
};

/// --- Deterministic fault injection (tests and the fuzz harness) ---------
///
/// Arms synthetic budget exhaustion for every *subsequently constructed*
/// guard whose site name equals `site`: the guard trips (BudgetTrip::
/// kInjected) on its `after_ticks`-th tick (0 = the first). Thread-local,
/// so parallel tests do not interfere. Injection works even on unlimited
/// budgets — that is the point: every guard site can be forced to its
/// exhaustion path without constructing an adversarial workload.
void inject_budget_exhaustion(const std::string& site,
                              std::uint64_t after_ticks = 0);

/// Clear all armed injections in this thread.
void clear_budget_injections();

/// Snapshot of one thread's armed injections. Injections are thread-local
/// by design (parallel tests must not interfere), so a harness that fans a
/// pipeline out over worker threads must explicitly carry the coordinating
/// thread's injections across: snapshot on the coordinator, install inside
/// each worker task. `install_injections` *replaces* the calling thread's
/// armed set, so pooled workers reused across runs always start from the
/// current coordinator's state, never a stale one.
struct InjectionSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> armed;
};
InjectionSnapshot injections_snapshot();
void install_injections(const InjectionSnapshot& snapshot);

/// Names of guard sites constructed in this thread since the last
/// `clear_guard_site_log` (deduplicated, in first-seen order). The fuzz
/// harness runs the pipeline once to discover the sites, then replays it
/// injecting exhaustion at each.
const std::vector<std::string>& guard_sites_seen();
void clear_guard_site_log();

}  // namespace fstg::robust
