#include "base/robust/status.h"

#include <cstring>
#include <sstream>

namespace fstg::robust {

const char* code_name(Code code) {
  switch (code) {
    case Code::kOk: return "ok";
    case Code::kInvalidArgument: return "invalid-argument";
    case Code::kParseError: return "parse-error";
    case Code::kIoError: return "io-error";
    case Code::kBudgetExhausted: return "budget-exhausted";
    case Code::kUnsupported: return "unsupported";
    case Code::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::ostringstream os;
  os << code_name(code_) << ": " << message_;
  if (file_ != nullptr && *file_ != '\0') {
    // Basename only: full build paths add noise without aiding diagnosis.
    const char* base = std::strrchr(file_, '/');
    os << " [" << (base ? base + 1 : file_) << ':' << line_ << ']';
  }
  if (!context_.empty()) {
    os << " (";
    for (std::size_t i = 0; i < context_.size(); ++i) {
      if (i) os << "; ";
      os << "while " << context_[i];
    }
    os << ')';
  }
  return os.str();
}

}  // namespace fstg::robust
