#include "base/table_printer.h"

#include "base/error.h"
#include "base/string_util.h"

namespace fstg {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "row has " + std::to_string(cells.size()) + " cells, expected " +
              std::to_string(headers_.size()));
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(long long v) { return std::to_string(v); }

std::string TablePrinter::num(double v, int decimals) {
  return strf("%.*f", decimals, v);
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t p = row[c].size(); p < width[c]; ++p) os << ' ';
    }
    os << '\n';
  };

  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) rule += "  ";
    rule += std::string(width[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const std::string& cell = row[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace fstg
