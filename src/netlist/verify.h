#pragma once

#include <string>

#include "fsm/encoding.h"
#include "fsm/state_table.h"
#include "kiss/kiss2.h"
#include "netlist/netlist.h"

namespace fstg {

/// Rebuild the *completed* functional state table (2^sv states, state index
/// = state code) by exhaustively simulating the synthesized circuit. This
/// is the table the paper's Tables 4/5/7 operate on: its state counts are
/// powers of two because the implementation realizes every code.
/// If `fsm`/`enc` are given, used state codes get their symbolic names.
StateTable read_back_table(const ScanCircuit& circuit,
                           const Kiss2Fsm* fsm = nullptr,
                           const Encoding* enc = nullptr);

/// Check the circuit against the symbolic machine on every *specified*
/// transition: next-state codes must match exactly and specified output
/// bits must match ('-' bits are free). On mismatch, fills `message` and
/// returns false.
bool circuit_matches_fsm(const ScanCircuit& circuit, const Kiss2Fsm& fsm,
                         const Encoding& enc, std::string* message = nullptr);

}  // namespace fstg
