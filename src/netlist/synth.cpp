#include "netlist/synth.h"

#include <map>

#include "base/error.h"
#include "logic/factor.h"
#include "logic/tautology.h"

namespace fstg {

namespace {

/// Cube over [pi input vars][sv state vars] from a row's input cube and a
/// present-state code.
Cube row_space_cube(const Kiss2Row& row, std::uint32_t ps_code, int pi,
                    int sv) {
  Cube c = Cube::full(pi + sv);
  // Field characters are MSB-first: leftmost character = input bit pi-1.
  for (int b = 0; b < pi; ++b) {
    char ch = row.input[static_cast<std::size_t>(pi - 1 - b)];
    if (ch == '0') c.set(b, Lit::kZero);
    if (ch == '1') c.set(b, Lit::kOne);
  }
  for (int k = 0; k < sv; ++k)
    c.set(pi + k, ((ps_code >> k) & 1u) ? Lit::kOne : Lit::kZero);
  return c;
}

/// Incrementally builds the SOP netlist with structural sharing: one
/// inverter per variable, one AND gate per distinct cube. Variables may be
/// primary (netlist inputs) or extracted divisors (gates registered via
/// define_divisor). Optionally decomposes wide gates into bounded-fanin
/// trees.
class SopBuilder {
 public:
  SopBuilder(Netlist& nl, int num_vars, int max_fanin)
      : nl_(nl), max_fanin_(max_fanin) {
    var_gate_.assign(static_cast<std::size_t>(num_vars), -1);
    inverter_of_.assign(static_cast<std::size_t>(num_vars), -1);
    for (int v = 0; v < nl.num_inputs() && v < num_vars; ++v)
      var_gate_[static_cast<std::size_t>(v)] = nl.inputs()[static_cast<std::size_t>(v)];
  }

  /// Register variable v as computed by an existing gate (divisors).
  void define_variable(int v, int gate_id) {
    var_gate_[static_cast<std::size_t>(v)] = gate_id;
  }

  /// Gate computing `lit` of variable v.
  int literal_gate(int v, Lit lit) {
    const int gate = var_gate_[static_cast<std::size_t>(v)];
    require(gate >= 0, "SopBuilder: variable has no gate");
    if (lit == Lit::kOne) return gate;
    int& inv = inverter_of_[static_cast<std::size_t>(v)];
    if (inv < 0) {
      const std::string base = nl_.gate(gate).name;
      inv = nl_.add_gate(GateType::kNot, {gate},
                         base.empty() ? "" : "n_" + base);
    }
    return inv;
  }

  /// AND/OR of `fanins` as a tree honoring the fanin bound (0 = no bound;
  /// bounds below 2 are invalid).
  int tree_gate(GateType type, std::vector<int> fanins,
                const std::string& name = "") {
    require(!fanins.empty(), "tree_gate: no fanins");
    require(max_fanin_ == 0 || max_fanin_ >= 2, "tree_gate: bad fanin bound");
    if (fanins.size() == 1) return fanins[0];
    std::vector<int> level = std::move(fanins);
    // Reduce in groups until the root fits the bound; the root carries the
    // name.
    while (max_fanin_ >= 2 &&
           level.size() > static_cast<std::size_t>(max_fanin_)) {
      std::vector<int> next;
      for (std::size_t i = 0; i < level.size();
           i += static_cast<std::size_t>(max_fanin_)) {
        const std::size_t end =
            std::min(level.size(), i + static_cast<std::size_t>(max_fanin_));
        if (end - i == 1) {
          next.push_back(level[i]);
        } else {
          next.push_back(nl_.add_gate(
              type, std::vector<int>(level.begin() + static_cast<long>(i),
                                     level.begin() + static_cast<long>(end))));
        }
      }
      level = std::move(next);
    }
    return nl_.add_gate(type, std::move(level), name);
  }

  /// Gate computing a cube (AND of its literals); shared across functions.
  int cube_gate(const Cube& c) {
    auto it = cube_cache_.find(c.raw_bits());
    if (it != cube_cache_.end()) return it->second;
    std::vector<int> fanins;
    for (int v = 0; v < c.num_vars(); ++v) {
      Lit lit = c.get(v);
      if (lit != Lit::kDC) fanins.push_back(literal_gate(v, lit));
    }
    int id;
    if (fanins.empty())
      id = const1();
    else
      id = tree_gate(GateType::kAnd, std::move(fanins));
    cube_cache_.emplace(c.raw_bits(), id);
    return id;
  }

  /// Gate computing a whole cover (OR of cube gates).
  int cover_gate(const Cover& cover, const std::string& name) {
    if (cover.empty()) return const0();
    std::vector<int> fanins;
    for (const Cube& c : cover.cubes()) {
      if (c.literal_count() == 0) return const1();
      fanins.push_back(cube_gate(c));
    }
    return tree_gate(GateType::kOr, std::move(fanins), name);
  }

  int const0() {
    if (const0_ < 0) const0_ = nl_.add_gate(GateType::kConst0, {}, "const0");
    return const0_;
  }
  int const1() {
    if (const1_ < 0) const1_ = nl_.add_gate(GateType::kConst1, {}, "const1");
    return const1_;
  }

 private:
  Netlist& nl_;
  int max_fanin_;
  std::vector<int> var_gate_;
  std::vector<int> inverter_of_;
  std::map<std::uint64_t, int> cube_cache_;
  int const0_ = -1;
  int const1_ = -1;
};

}  // namespace

SynthesisResult synthesize_scan_circuit(const Kiss2Fsm& fsm,
                                        const MinimizeOptions& minimize) {
  SynthesisOptions options;
  options.minimize = minimize;
  return synthesize_scan_circuit(fsm, options);
}

SynthesisResult synthesize_scan_circuit(const Kiss2Fsm& fsm,
                                        const SynthesisOptions& options) {
  fsm.check_deterministic();
  require(fsm.num_inputs >= 1, "synthesize: machine has no inputs");
  require(fsm.num_outputs >= 1, "synthesize: machine has no outputs");

  SynthesisResult result;
  result.encoding = encode_states(fsm, options.encoding);
  const Encoding& enc = result.encoding;
  const int pi = fsm.num_inputs;
  const int sv = enc.state_bits;
  const int nv = pi + sv;
  require(nv <= 32, "synthesize: too many variables (pi + sv > 32)");

  // The specified subspace; its complement is free for the minimizer.
  Cover specified(nv);
  for (const auto& row : fsm.rows) {
    std::uint32_t code =
        enc.code_of_state[static_cast<std::size_t>(fsm.state_index(row.present))];
    specified.add(row_space_cube(row, code, pi, sv));
  }
  const Cover dc_space = complement_cover(specified);

  // Per-function on/dc sets.
  const int num_funcs = fsm.num_outputs + sv;
  std::vector<Cover> on(static_cast<std::size_t>(num_funcs), Cover(nv));
  std::vector<Cover> dc(static_cast<std::size_t>(num_funcs), Cover(nv));
  for (const auto& row : fsm.rows) {
    std::uint32_t ps_code =
        enc.code_of_state[static_cast<std::size_t>(fsm.state_index(row.present))];
    std::uint32_t ns_code =
        enc.code_of_state[static_cast<std::size_t>(fsm.state_index(row.next))];
    Cube c = row_space_cube(row, ps_code, pi, sv);
    for (int b = 0; b < fsm.num_outputs; ++b) {
      // Output fields are MSB-first like input fields.
      char ch = row.output[static_cast<std::size_t>(fsm.num_outputs - 1 - b)];
      if (ch == '1') on[static_cast<std::size_t>(b)].add(c);
      if (ch == '-') dc[static_cast<std::size_t>(b)].add(c);
    }
    for (int k = 0; k < sv; ++k)
      if ((ns_code >> k) & 1u)
        on[static_cast<std::size_t>(fsm.num_outputs + k)].add(c);
  }
  for (int f = 0; f < num_funcs; ++f)
    for (const Cube& c : dc_space.cubes())
      dc[static_cast<std::size_t>(f)].add(c);

  // Minimize each function.
  result.covers.reserve(static_cast<std::size_t>(num_funcs));
  for (int f = 0; f < num_funcs; ++f)
    result.covers.push_back(minimize_cover(on[static_cast<std::size_t>(f)],
                                           dc[static_cast<std::size_t>(f)],
                                           options.minimize));

  // Emit the netlist.
  ScanCircuit& circuit = result.circuit;
  circuit.name = fsm.name;
  circuit.num_pi = pi;
  circuit.num_po = fsm.num_outputs;
  circuit.num_sv = sv;
  for (int b = 0; b < pi; ++b) circuit.comb.add_input("x" + std::to_string(b));
  for (int k = 0; k < sv; ++k) circuit.comb.add_input("y" + std::to_string(k));

  auto function_name = [&](int f) {
    return f < fsm.num_outputs ? "z" + std::to_string(f)
                               : "Y" + std::to_string(f - fsm.num_outputs);
  };

  if (!options.multilevel) {
    SopBuilder builder(circuit.comb, nv, /*max_fanin=*/0);
    for (int f = 0; f < num_funcs; ++f)
      circuit.comb.add_output(builder.cover_gate(
          result.covers[static_cast<std::size_t>(f)], function_name(f)));
    return result;
  }

  // Multi-level: extract shared cube divisors, then emit with bounded
  // fanin. The factored network is logically identical to the two-level
  // covers, so the read-back table (and hence the functional tests) do
  // not depend on this choice.
  const FactoredNetwork net = factor_covers(result.covers);
  SopBuilder builder(circuit.comb, net.total_vars(), options.max_fanin);
  for (std::size_t d = 0; d < net.divisors.size(); ++d) {
    const FactoredNetwork::Divisor& div = net.divisors[d];
    const int gate = builder.tree_gate(
        GateType::kAnd,
        {builder.literal_gate(div.a_var, div.a_lit),
         builder.literal_gate(div.b_var, div.b_lit)},
        "d" + std::to_string(d));
    builder.define_variable(net.base_vars + static_cast<int>(d), gate);
  }
  for (int f = 0; f < num_funcs; ++f)
    circuit.comb.add_output(builder.cover_gate(
        net.functions[static_cast<std::size_t>(f)], function_name(f)));
  return result;
}

}  // namespace fstg
