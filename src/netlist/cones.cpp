#include "netlist/cones.h"

#include "netlist/netlist.h"

namespace fstg {

ConePartition fanout_free_cones(const Netlist& nl) {
  const int n = nl.num_gates();
  ConePartition part;
  part.head.assign(static_cast<std::size_t>(n), -1);
  part.cone_id.assign(static_cast<std::size_t>(n), -1);
  if (n == 0) return part;

  // Fanout counts + the single fanout (when unique), without materializing
  // the full fanout lists.
  std::vector<int> fanout_count(static_cast<std::size_t>(n), 0);
  std::vector<int> single_fanout(static_cast<std::size_t>(n), -1);
  for (int id = 0; id < n; ++id) {
    for (int f : nl.gate(id).fanins) {
      const std::size_t fs = static_cast<std::size_t>(f);
      ++fanout_count[fs];
      single_fanout[fs] = id;
    }
  }
  std::vector<char> is_output(static_cast<std::size_t>(n), 0);
  for (int o : nl.outputs()) is_output[static_cast<std::size_t>(o)] = 1;

  // Reverse topological sweep: a gate's head is itself unless it has
  // exactly one fanout, is not observable as an output, and that fanout's
  // head is already known (ids are topological, so it is).
  for (int id = n - 1; id >= 0; --id) {
    const std::size_t s = static_cast<std::size_t>(id);
    if (fanout_count[s] == 1 && !is_output[s])
      part.head[s] = part.head[static_cast<std::size_t>(single_fanout[s])];
    else
      part.head[s] = id;
  }

  // Dense cone ids ordered by ascending head id (canonical for a given
  // netlist), then member/size fill.
  for (int id = 0; id < n; ++id) {
    if (part.head[static_cast<std::size_t>(id)] == id) {
      part.cone_id[static_cast<std::size_t>(id)] =
          static_cast<int>(part.cone_head.size());
      part.cone_head.push_back(id);
      part.cone_size.push_back(0);
    }
  }
  for (int id = 0; id < n; ++id) {
    const int h = part.head[static_cast<std::size_t>(id)];
    const int cid = part.cone_id[static_cast<std::size_t>(h)];
    part.cone_id[static_cast<std::size_t>(id)] = cid;
    ++part.cone_size[static_cast<std::size_t>(cid)];
  }
  return part;
}

std::vector<int> output_dominators(const Netlist& nl) {
  const int n = nl.num_gates();
  // The virtual sink gets the one id larger than every gate id, so the
  // invariant "a post-dominator's id is larger than the gate's" holds for
  // the intersection walks below (fanout ids exceed fanin ids).
  const int sink = n;
  std::vector<int> dom(static_cast<std::size_t>(n), kDominatorDead);
  if (n == 0) return dom;

  std::vector<std::vector<int>> fanouts = nl.fanouts();
  std::vector<char> is_output(static_cast<std::size_t>(n), 0);
  for (int o : nl.outputs()) is_output[static_cast<std::size_t>(o)] = 1;

  // idom[g] in gate ids with `sink` for the virtual sink; kDominatorDead
  // for unobservable gates. Gate ids are topological, so descending order
  // visits every fanout before its fanins.
  std::vector<int> idom(static_cast<std::size_t>(n), kDominatorDead);
  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (a < b) a = a == sink ? sink : idom[static_cast<std::size_t>(a)];
      while (b < a) b = b == sink ? sink : idom[static_cast<std::size_t>(b)];
    }
    return a;
  };
  for (int id = n - 1; id >= 0; --id) {
    const std::size_t s = static_cast<std::size_t>(id);
    int d = is_output[s] ? sink : kDominatorDead;
    for (int f : fanouts[s]) {
      const int fd = idom[static_cast<std::size_t>(f)];
      if (fd == kDominatorDead) continue;  // no output beyond this fanout
      d = d == kDominatorDead ? f : intersect(d, f);
    }
    idom[s] = d;
  }
  for (int id = 0; id < n; ++id) {
    const int d = idom[static_cast<std::size_t>(id)];
    dom[static_cast<std::size_t>(id)] = d == sink ? kDominatorSink : d;
  }
  return dom;
}

}  // namespace fstg
