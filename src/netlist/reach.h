#pragma once

#include <vector>

#include "base/bitvec.h"
#include "netlist/netlist.h"

namespace fstg {

/// forward_reachability(nl)[g] = set of gates strictly downstream of g
/// (g itself excluded). Used for the paper's bridging-fault condition (3):
/// a pair (g1, g2) is non-feedback iff neither reaches the other.
std::vector<BitVec> forward_reachability(const Netlist& nl);

}  // namespace fstg
