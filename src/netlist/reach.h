#pragma once

#include <vector>

#include "base/bitvec.h"
#include "base/robust/budget.h"
#include "base/robust/status.h"
#include "netlist/netlist.h"

namespace fstg {

/// forward_reachability(nl)[g] = set of gates strictly downstream of g
/// (g itself excluded). Used for the paper's bridging-fault condition (3):
/// a pair (g1, g2) is non-feedback iff neither reaches the other.
std::vector<BitVec> forward_reachability(const Netlist& nl);

/// Budgeted variant. The result is quadratic in gates (n bit-vectors of n
/// bits), so the guard is charged the full allocation up front and then
/// ticked per gate row; a partial reachability matrix is never returned —
/// downstream consumers (bridging condition 3) would silently produce a
/// wrong fault list — so exhaustion yields a structured error instead.
robust::Result<std::vector<BitVec>> forward_reachability_guarded(
    const Netlist& nl, robust::RunGuard& guard);

}  // namespace fstg
