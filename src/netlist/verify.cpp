#include "netlist/verify.h"

#include "base/error.h"
#include "base/string_util.h"

namespace fstg {

StateTable read_back_table(const ScanCircuit& circuit, const Kiss2Fsm* fsm,
                           const Encoding* enc) {
  const int num_states = 1 << circuit.num_sv;
  StateTable table(circuit.num_pi, circuit.num_po, num_states);
  table.name = circuit.name;
  table.state_names.resize(static_cast<std::size_t>(num_states));
  for (int code = 0; code < num_states; ++code) {
    int sym = (enc != nullptr) ? enc->state_of_code[static_cast<std::size_t>(code)] : -1;
    table.state_names[static_cast<std::size_t>(code)] =
        (sym >= 0 && fsm != nullptr)
            ? fsm->state_names[static_cast<std::size_t>(sym)]
            : "c" + std::to_string(code);
  }

  const std::uint32_t nic = table.num_input_combos();
  for (int code = 0; code < num_states; ++code) {
    for (std::uint32_t ic = 0; ic < nic; ++ic) {
      std::uint32_t po = 0, ns = 0;
      circuit.step(static_cast<std::uint32_t>(code), ic, po, ns);
      table.set(code, ic, static_cast<int>(ns), po);
    }
  }
  return table;
}

bool circuit_matches_fsm(const ScanCircuit& circuit, const Kiss2Fsm& fsm,
                         const Encoding& enc, std::string* message) {
  const int pi = fsm.num_inputs;
  for (const auto& row : fsm.rows) {
    const std::uint32_t ps_code =
        enc.code_of_state[static_cast<std::size_t>(fsm.state_index(row.present))];
    const std::uint32_t ns_code =
        enc.code_of_state[static_cast<std::size_t>(fsm.state_index(row.next))];

    // Enumerate the row's input minterms (field characters are MSB-first).
    std::uint32_t value = 0;
    std::vector<int> free_bits;
    for (int b = 0; b < pi; ++b) {
      char c = row.input[static_cast<std::size_t>(pi - 1 - b)];
      if (c == '-')
        free_bits.push_back(b);
      else if (c == '1')
        value |= 1u << b;
    }
    const std::uint32_t n_free = 1u << free_bits.size();
    for (std::uint32_t m = 0; m < n_free; ++m) {
      std::uint32_t ic = value;
      for (std::size_t k = 0; k < free_bits.size(); ++k)
        if ((m >> k) & 1u) ic |= 1u << free_bits[k];

      std::uint32_t po = 0, ns = 0;
      circuit.step(ps_code, ic, po, ns);
      if (ns != ns_code) {
        if (message)
          *message = strf("state %s input %u: next code %u, expected %u",
                          row.present.c_str(), ic, ns, ns_code);
        return false;
      }
      for (int b = 0; b < fsm.num_outputs; ++b) {
        char expect =
            row.output[static_cast<std::size_t>(fsm.num_outputs - 1 - b)];
        if (expect == '-') continue;
        bool bit = (po >> b) & 1u;
        if (bit != (expect == '1')) {
          if (message)
            *message = strf("state %s input %u: output bit %d is %d, expected %c",
                            row.present.c_str(), ic, b, bit ? 1 : 0, expect);
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace fstg
