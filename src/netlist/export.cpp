#include "netlist/export.h"

#include <bit>
#include <sstream>

#include "base/error.h"

namespace fstg {

namespace {

std::string net_name(const Netlist& nl, int id) {
  const Gate& g = nl.gate(id);
  if (g.type == GateType::kInput) return g.name;
  return "n" + std::to_string(id);
}

}  // namespace

std::string to_blif(const ScanCircuit& circuit,
                    const std::string& model_name) {
  const Netlist& nl = circuit.comb;
  std::ostringstream os;
  os << ".model "
     << (model_name.empty()
             ? (circuit.name.empty() ? "fstg_circuit" : circuit.name)
             : model_name)
     << "\n";
  os << ".inputs";
  for (int b = 0; b < circuit.num_pi; ++b) os << " x" << b;
  os << "\n.outputs";
  for (int k = 0; k < circuit.num_po; ++k) os << " z" << k;
  os << "\n";

  // Latches: next-state net -> present-state net.
  for (int k = 0; k < circuit.num_sv; ++k) {
    os << ".latch "
       << net_name(nl, nl.outputs()[static_cast<std::size_t>(circuit.num_po + k)])
       << " y" << k << " 0\n";
  }

  // Gates as .names blocks (single-output covers).
  for (int id = 0; id < nl.num_gates(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type == GateType::kInput) continue;
    os << ".names";
    for (int f : g.fanins) os << " " << net_name(nl, f);
    os << " " << net_name(nl, id) << "\n";
    const std::size_t n = g.fanins.size();
    switch (g.type) {
      case GateType::kConst0:
        break;  // empty cover = constant 0
      case GateType::kConst1:
        os << "1\n";
        break;
      case GateType::kBuf:
        os << "1 1\n";
        break;
      case GateType::kNot:
        os << "0 1\n";
        break;
      case GateType::kAnd:
        os << std::string(n, '1') << " 1\n";
        break;
      case GateType::kNand:
        for (std::size_t p = 0; p < n; ++p) {
          std::string row(n, '-');
          row[p] = '0';
          os << row << " 1\n";
        }
        break;
      case GateType::kOr:
        for (std::size_t p = 0; p < n; ++p) {
          std::string row(n, '-');
          row[p] = '1';
          os << row << " 1\n";
        }
        break;
      case GateType::kNor:
        os << std::string(n, '0') << " 1\n";
        break;
      case GateType::kXor:
      case GateType::kXnor: {
        // Parity function: one on-set row per input combination of the
        // right parity (odd for XOR, even for XNOR). n is small by
        // construction; 2^(n-1) rows is the exact two-level form.
        const bool odd = g.type == GateType::kXor;
        require(n <= 16, "to_blif: XOR/XNOR fanin too wide for parity cover");
        for (std::uint32_t m = 0; m < (1u << n); ++m) {
          const bool parity = (std::popcount(m) & 1) != 0;
          if (parity != odd) continue;
          std::string row(n, '0');
          for (std::size_t p = 0; p < n; ++p)
            if ((m >> p) & 1u) row[p] = '1';
          os << row << " 1\n";
        }
        break;
      }
      case GateType::kInput:
        break;  // unreachable
    }
  }

  // Primary outputs are aliases of their driving nets.
  for (int k = 0; k < circuit.num_po; ++k) {
    os << ".names "
       << net_name(nl, nl.outputs()[static_cast<std::size_t>(k)]) << " z" << k
       << "\n1 1\n";
  }
  os << ".end\n";
  return os.str();
}

std::string to_bench(const ScanCircuit& circuit) {
  const Netlist& nl = circuit.comb;
  std::ostringstream os;
  os << "# " << circuit.name << " (full-scan combinational view; y* are "
     << "pseudo primary inputs, Y* pseudo primary outputs)\n";
  for (int b = 0; b < circuit.num_pi; ++b) os << "INPUT(x" << b << ")\n";
  for (int k = 0; k < circuit.num_sv; ++k) os << "INPUT(y" << k << ")\n";
  for (int k = 0; k < circuit.num_po; ++k) os << "OUTPUT(z" << k << ")\n";
  for (int k = 0; k < circuit.num_sv; ++k) os << "OUTPUT(Y" << k << ")\n";
  os << "\n";

  for (int id = 0; id < nl.num_gates(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type == GateType::kInput) continue;
    const char* op = nullptr;
    switch (g.type) {
      case GateType::kBuf: op = "BUFF"; break;
      case GateType::kNot: op = "NOT"; break;
      case GateType::kAnd: op = "AND"; break;
      case GateType::kOr: op = "OR"; break;
      case GateType::kNand: op = "NAND"; break;
      case GateType::kNor: op = "NOR"; break;
      case GateType::kXor: op = "XOR"; break;
      case GateType::kXnor: op = "XNOR"; break;
      case GateType::kConst0: op = nullptr; break;
      case GateType::kConst1: op = nullptr; break;
      case GateType::kInput: op = nullptr; break;
    }
    os << net_name(nl, id) << " = ";
    if (op == nullptr) {
      // .bench has no constants; emit the standard trick via XOR/BUFF of a
      // net with itself is invalid, so use an explicit pseudo gate name
      // understood by most readers.
      os << (g.type == GateType::kConst1 ? "VDD" : "GND") << "\n";
      continue;
    }
    os << op << "(";
    for (std::size_t p = 0; p < g.fanins.size(); ++p) {
      if (p) os << ", ";
      os << net_name(nl, g.fanins[p]);
    }
    os << ")\n";
  }
  os << "\n";
  for (int k = 0; k < circuit.num_po; ++k)
    os << "z" << k << " = BUFF("
       << net_name(nl, nl.outputs()[static_cast<std::size_t>(k)]) << ")\n";
  for (int k = 0; k < circuit.num_sv; ++k)
    os << "Y" << k << " = BUFF("
       << net_name(nl, nl.outputs()[static_cast<std::size_t>(circuit.num_po + k)])
       << ")\n";
  return os.str();
}

}  // namespace fstg
