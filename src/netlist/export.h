#pragma once

#include <string>

#include "netlist/netlist.h"

namespace fstg {

/// Emit the full-scan circuit as BLIF (Berkeley Logic Interchange Format):
/// `.model` with `.inputs`/`.outputs`, one `.names` block per gate, and one
/// `.latch` per state variable (the scan chain is a DFT artefact, not part
/// of the functional BLIF view). Suitable for SIS/ABC-style tools.
std::string to_blif(const ScanCircuit& circuit,
                    const std::string& model_name = "");

/// Emit the combinational core in the ISCAS-89 `.bench` dialect
/// (INPUT/OUTPUT declarations plus `name = GATE(a, b, ...)` lines; state
/// variables appear as pseudo inputs/outputs, the full-scan convention
/// used by ATPG tools).
std::string to_bench(const ScanCircuit& circuit);

}  // namespace fstg
