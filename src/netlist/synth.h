#pragma once

#include "fsm/encoding.h"
#include "kiss/kiss2.h"
#include "logic/minimize.h"
#include "netlist/netlist.h"

namespace fstg {

/// How to implement the machine. The functional tests do not depend on
/// this; the gate-level fault experiments do.
struct SynthesisOptions {
  MinimizeOptions minimize;
  EncodingStyle encoding = EncodingStyle::kNatural;
  /// Apply multi-level restructuring (common-cube extraction + bounded-
  /// fanin decomposition) after two-level minimization. The paper's
  /// implementations are multi-level; ours defaults to two-level, with
  /// this knob powering the implementation-independence ablation.
  bool multilevel = false;
  /// Maximum gate fanin after decomposition (0 = unbounded). Only applies
  /// when multilevel is set.
  int max_fanin = 4;
};

/// Output of two-level synthesis of a KISS2 machine into a full-scan
/// circuit. The combinational core computes all primary outputs and
/// next-state bits from [primary inputs][present-state bits]; unspecified
/// (state, input) entries and unused state codes are don't-cares that the
/// minimizer resolves, exactly as a synthesis flow would.
struct SynthesisResult {
  ScanCircuit circuit;
  Encoding encoding;
  /// Minimized single-output covers, indexed like the core's outputs
  /// ([primary outputs][next-state bits]), over variables
  /// [input bits 0..pi-1][state bits pi..pi+sv-1].
  std::vector<Cover> covers;
};

/// Synthesize a deterministic KISS2 machine. Throws on nondeterminism.
SynthesisResult synthesize_scan_circuit(const Kiss2Fsm& fsm,
                                        const SynthesisOptions& options = {});

/// Convenience overload: two-level, natural encoding, custom minimizer.
SynthesisResult synthesize_scan_circuit(const Kiss2Fsm& fsm,
                                        const MinimizeOptions& minimize);

}  // namespace fstg
