#include "netlist/blif_reader.h"

#include <fstream>
#include <map>
#include <sstream>

#include "base/error.h"
#include "base/string_util.h"

namespace fstg {

namespace {

/// Split the text into logical lines: strip comments, join continuations.
std::vector<std::pair<int, std::string>> logical_lines(std::string_view text) {
  std::vector<std::pair<int, std::string>> out;
  int line_no = 0;
  std::string pending;
  int pending_line = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string line{text.substr(pos, eol - pos)};
    pos = eol + 1;
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    // Continuation: trailing backslash.
    std::string_view trimmed = trim(line);
    const bool cont = !trimmed.empty() && trimmed.back() == '\\';
    if (cont) trimmed = trim(trimmed.substr(0, trimmed.size() - 1));
    if (pending.empty()) pending_line = line_no;
    if (!trimmed.empty()) {
      if (!pending.empty()) pending += ' ';
      pending += std::string(trimmed);
    }
    if (!cont) {
      if (!pending.empty()) out.emplace_back(pending_line, pending);
      pending.clear();
    }
    if (pos > text.size()) break;
  }
  if (!pending.empty()) out.emplace_back(pending_line, pending);
  return out;
}

}  // namespace

BlifModel parse_blif_model(std::string_view text) {
  BlifModel model;
  BlifNames* current = nullptr;
  for (const auto& [line_no, line] : logical_lines(text)) {
    const std::vector<std::string> tok = split_ws(line);
    if (tok.empty()) continue;
    if (tok[0][0] == '.') {
      current = nullptr;
      if (tok[0] == ".model") {
        if (tok.size() >= 2) model.name = tok[1];
      } else if (tok[0] == ".inputs") {
        for (std::size_t i = 1; i < tok.size(); ++i)
          model.inputs.push_back({tok[i], line_no});
      } else if (tok[0] == ".outputs") {
        for (std::size_t i = 1; i < tok.size(); ++i)
          model.outputs.push_back({tok[i], line_no});
      } else if (tok[0] == ".latch") {
        if (tok.size() < 3) throw ParseError(".latch needs input and output", line_no);
        model.latches.push_back({tok[1], tok[2], line_no});
      } else if (tok[0] == ".names") {
        if (tok.size() < 2) throw ParseError(".names needs at least an output", line_no);
        BlifNames block;
        block.inputs.assign(tok.begin() + 1, tok.end() - 1);
        block.output = tok.back();
        block.line = line_no;
        model.blocks.push_back(std::move(block));
        current = &model.blocks.back();
      } else if (tok[0] == ".end" || tok[0] == ".exdc" || tok[0] == ".wire_load_slope") {
        // .end terminates; the rest are ignored annotations.
      } else {
        throw ParseError("unsupported BLIF directive " + tok[0], line_no);
      }
      continue;
    }
    // Cover row inside a .names block.
    if (current == nullptr)
      throw ParseError("cover row outside a .names block", line_no);
    std::string in_part, out_part;
    if (current->inputs.empty()) {
      if (tok.size() != 1) throw ParseError("bad constant row", line_no);
      out_part = tok[0];
    } else {
      if (tok.size() != 2) throw ParseError("bad cover row", line_no);
      in_part = tok[0];
      out_part = tok[1];
      if (in_part.size() != current->inputs.size())
        throw ParseError("cover row width mismatch", line_no);
      if (!all_chars_in(in_part, "01-"))
        throw ParseError("cover row must be over {0,1,-}", line_no);
    }
    if (out_part != "0" && out_part != "1")
      throw ParseError("cover output must be 0 or 1", line_no);
    const bool on = out_part == "1";
    if (current->has_rows && on != current->on_set)
      throw ParseError("mixed-polarity cover outputs are not supported",
                       line_no);
    current->on_set = on;
    current->has_rows = true;
    if (!current->inputs.empty()) current->rows.push_back(in_part);
  }
  return model;
}

namespace {

/// Builds gates for the blocks in dependency order.
class BlifBuilder {
 public:
  explicit BlifBuilder(Netlist& nl) : nl_(nl) {}

  /// Register `net` as driven by `gate`; a second driver for the same net
  /// is a malformed file (two .names blocks, a block colliding with an
  /// input, a duplicated input name, ...), not an internal invariant.
  void define(const std::string& net, int gate, int line) {
    auto [it, inserted] = net_gate_.emplace(net, gate);
    if (!inserted)
      throw ParseError("BLIF: net " + net + " has multiple drivers", line);
  }
  bool defined(const std::string& net) const { return net_gate_.count(net) > 0; }
  int gate_of(const std::string& net, int line) const {
    auto it = net_gate_.find(net);
    if (it == net_gate_.end())
      throw ParseError("BLIF: undefined net " + net, line);
    return it->second;
  }

  int inverter(const std::string& net, int line) {
    auto it = inverter_of_.find(net);
    if (it != inverter_of_.end()) return it->second;
    const int inv = nl_.add_gate(GateType::kNot, {gate_of(net, line)});
    inverter_of_.emplace(net, inv);
    return inv;
  }

  /// Emit the gates of one block; returns the gate driving its output net.
  int emit(const BlifNames& block) {
    // Constant blocks.
    if (block.inputs.empty()) {
      const bool value = block.has_rows && block.on_set;
      return nl_.add_gate(value ? GateType::kConst1 : GateType::kConst0, {});
    }
    if (!block.has_rows)  // no rows at all: constant 0
      return nl_.add_gate(GateType::kConst0, {});

    std::vector<int> products;
    for (const std::string& row : block.rows) {
      std::vector<int> literals;
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (row[i] == '-') continue;
        literals.push_back(row[i] == '1'
                               ? gate_of(block.inputs[i], block.line)
                               : inverter(block.inputs[i], block.line));
      }
      if (literals.empty()) {
        // Universal row: function is constant (1 for on-set, 0 otherwise).
        return nl_.add_gate(block.on_set ? GateType::kConst1 : GateType::kConst0,
                            {});
      }
      products.push_back(literals.size() == 1
                             ? literals[0]
                             : nl_.add_gate(GateType::kAnd, std::move(literals)));
    }
    int sum = products.size() == 1
                  ? products[0]
                  : nl_.add_gate(GateType::kOr, std::move(products));
    if (!block.on_set) sum = nl_.add_gate(GateType::kNot, {sum});
    return sum;
  }

 private:
  Netlist& nl_;
  std::map<std::string, int> net_gate_;
  std::map<std::string, int> inverter_of_;
};

}  // namespace

ScanCircuit parse_blif(const BlifModel& model) {
  // Empty or directive-only input is a malformed *file*, not an internal
  // invariant: keep it in the ParseError category so callers that map
  // parse failures to a distinct exit code / Status see it as one.
  if (model.inputs.empty() && model.latches.empty())
    throw ParseError("BLIF: model has no inputs", 1);
  if (model.outputs.empty()) throw ParseError("BLIF: model has no outputs", 1);

  ScanCircuit circuit;
  circuit.name = model.name;
  circuit.num_pi = static_cast<int>(model.inputs.size());
  circuit.num_po = static_cast<int>(model.outputs.size());
  circuit.num_sv = static_cast<int>(model.latches.size());

  BlifBuilder builder(circuit.comb);
  for (const BlifNetDecl& in : model.inputs)
    builder.define(in.net, circuit.comb.add_input(in.net), in.line);
  for (const BlifLatch& latch : model.latches)
    builder.define(latch.state_out, circuit.comb.add_input(latch.state_out),
                   latch.line);

  // Topological emission of the names blocks (Kahn over net dependencies).
  std::vector<bool> emitted(model.blocks.size(), false);
  std::size_t done = 0;
  // Drivers are claimed up front so a block output colliding with another
  // block (or an input) is reported as the multiple-driver error it is,
  // not as the "cycle or undefined nets" leftover of the Kahn loop.
  {
    std::map<std::string, int> block_output_line;
    for (const BlifNames& block : model.blocks) {
      if (builder.defined(block.output))
        throw ParseError("BLIF: net " + block.output + " has multiple drivers",
                         block.line);
      auto [it, inserted] = block_output_line.emplace(block.output, block.line);
      if (!inserted)
        throw ParseError("BLIF: net " + block.output + " has multiple drivers",
                         block.line);
    }
  }
  while (done < model.blocks.size()) {
    bool progress = false;
    for (std::size_t b = 0; b < model.blocks.size(); ++b) {
      if (emitted[b]) continue;
      const BlifNames& block = model.blocks[b];
      bool ready = true;
      for (const std::string& in : block.inputs)
        if (!builder.defined(in)) ready = false;
      if (!ready) continue;
      builder.define(block.output, builder.emit(block), block.line);
      emitted[b] = true;
      ++done;
      progress = true;
    }
    if (!progress) {
      // Name one offending block so a fuzzer-found cycle is diagnosable.
      int at = 1;
      for (std::size_t b = 0; b < model.blocks.size(); ++b)
        if (!emitted[b]) { at = model.blocks[b].line; break; }
      throw ParseError(
          "BLIF: combinational cycle or undefined nets among .names blocks",
          at);
    }
  }

  for (const BlifNetDecl& out : model.outputs)
    circuit.comb.add_output(builder.gate_of(out.net, out.line));
  for (const BlifLatch& latch : model.latches)
    circuit.comb.add_output(builder.gate_of(latch.data_in, latch.line));
  return circuit;
}

ScanCircuit parse_blif(std::string_view text) {
  return parse_blif(parse_blif_model(text));
}

ScanCircuit parse_blif_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open BLIF file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_blif(ss.str());
}

}  // namespace fstg
