#pragma once

#include <string>
#include <string_view>

#include "netlist/netlist.h"

namespace fstg {

/// Parse a BLIF model into a full-scan circuit. Supported subset (what
/// to_blif emits, plus the common hand-written forms): `.model`,
/// `.inputs`/`.outputs` (with `\` line continuations), `.latch in out
/// [type clock] [init]`, single-output `.names` blocks whose output column
/// is all-1 (on-set) or all-0 (off-set rows define the complement), and
/// `.end`. Blocks may appear in any order; combinational cycles are
/// rejected. The resulting circuit's inputs are [.inputs][latch outputs]
/// and its outputs [.outputs][latch inputs], matching the library's
/// full-scan convention.
ScanCircuit parse_blif(std::string_view text);

ScanCircuit parse_blif_file(const std::string& path);

}  // namespace fstg
