#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.h"

namespace fstg {

/// --- Structural BLIF model -----------------------------------------------
///
/// The declaration-level view of a BLIF file, with source line numbers:
/// what `.inputs`/`.outputs`/`.latch`/`.names` say, before any gate is
/// built. `parse_blif_model` validates only *local* syntax (directive
/// shapes, cover-row widths and characters) and deliberately tolerates the
/// graph-level malformations the lint analyzers diagnose — combinational
/// cycles, undriven nets, multiple drivers, dangling nets. `parse_blif`
/// builds a circuit from this model and rejects those malformations with
/// `ParseError`s that carry the offending line.

/// One single-output `.names` block.
struct BlifNames {
  std::vector<std::string> inputs;
  std::string output;
  std::vector<std::string> rows;  ///< input parts only; empty for constants
  bool on_set = true;             ///< false: rows describe the off-set
  bool has_rows = false;
  int line = 0;
};

/// One `.latch data_in state_out` declaration.
struct BlifLatch {
  std::string data_in;
  std::string state_out;
  int line = 0;
};

/// A net named in `.inputs` or `.outputs`, with the declaring line.
struct BlifNetDecl {
  std::string net;
  int line = 0;
};

struct BlifModel {
  std::string name;
  std::vector<BlifNetDecl> inputs;
  std::vector<BlifNetDecl> outputs;
  std::vector<BlifLatch> latches;
  std::vector<BlifNames> blocks;
};

/// Parse the declaration structure only (see above). Throws ParseError on
/// local syntax problems; never on graph-level ones.
BlifModel parse_blif_model(std::string_view text);

/// Parse a BLIF model into a full-scan circuit. Supported subset (what
/// to_blif emits, plus the common hand-written forms): `.model`,
/// `.inputs`/`.outputs` (with `\` line continuations), `.latch in out
/// [type clock] [init]`, single-output `.names` blocks whose output column
/// is all-1 (on-set) or all-0 (off-set rows define the complement), and
/// `.end`. Blocks may appear in any order; combinational cycles, undriven
/// or multiply-driven nets, and duplicate input/latch declarations are
/// rejected. The resulting circuit's inputs are [.inputs][latch outputs]
/// and its outputs [.outputs][latch inputs], matching the library's
/// full-scan convention.
ScanCircuit parse_blif(std::string_view text);
ScanCircuit parse_blif(const BlifModel& model);

ScanCircuit parse_blif_file(const std::string& path);

}  // namespace fstg
