#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fstg {

enum class GateType : std::uint8_t {
  kInput,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
};

const char* gate_type_name(GateType type);

/// One gate; its id is its index in the netlist. Fanins are gate ids.
struct Gate {
  GateType type = GateType::kBuf;
  std::vector<int> fanins;
  std::string name;
};

/// A combinational gate-level netlist. Gates must be added in topological
/// order (every fanin id < the gate's own id), which the builder enforces;
/// this makes single-pass levelized evaluation trivial.
class Netlist {
 public:
  /// Add a primary-input gate; returns its id.
  int add_input(std::string name);
  /// Add a logic gate; fanin ids must already exist. Returns its id.
  int add_gate(GateType type, std::vector<int> fanins, std::string name = "");
  /// Mark a gate as driving a primary output (in order of registration).
  void add_output(int gate_id);

  int num_gates() const { return static_cast<int>(gates_.size()); }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }
  const Gate& gate(int id) const { return gates_[static_cast<std::size_t>(id)]; }
  const std::vector<int>& inputs() const { return inputs_; }
  const std::vector<int>& outputs() const { return outputs_; }

  /// fanouts()[g] = ids of gates with g among their fanins.
  std::vector<std::vector<int>> fanouts() const;

  /// Logic level of each gate (inputs/constants = 0).
  std::vector<int> levels() const;
  int depth() const;

  /// Count of gates per type (reporting).
  std::vector<int> type_histogram() const;

  /// Evaluate one input pattern (bit i of `input_bits` = value of the i-th
  /// primary input). Returns all gate values; scalar reference evaluator
  /// used by verification — the word-parallel simulator lives in sim/.
  std::vector<bool> evaluate(std::uint64_t input_bits) const;

  /// Output word for one input pattern (bit k = k-th primary output).
  std::uint64_t evaluate_outputs(std::uint64_t input_bits) const;

 private:
  std::vector<Gate> gates_;
  std::vector<int> inputs_;
  std::vector<int> outputs_;
};

/// A full-scan sequential circuit: combinational core plus scan bookkeeping.
/// The core's inputs are ordered [primary inputs][present-state variables]
/// and its outputs [primary outputs][next-state variables].
struct ScanCircuit {
  Netlist comb;
  int num_pi = 0;
  int num_po = 0;
  int num_sv = 0;
  std::string name;

  int comb_inputs() const { return num_pi + num_sv; }
  int comb_outputs() const { return num_po + num_sv; }

  /// One functional clock: (present state, primary inputs) ->
  /// (primary outputs, next state).
  void step(std::uint32_t state, std::uint32_t pi_bits,
            std::uint32_t& po_bits, std::uint32_t& next_state) const;
};

}  // namespace fstg
