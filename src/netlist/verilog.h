#pragma once

#include <string>

#include "atpg/test.h"
#include "netlist/netlist.h"

namespace fstg {

/// Emit a synthesizable structural Verilog module for a full-scan circuit:
/// continuous assigns for the combinational core, a state register with a
/// mux-based scan chain (scan_en / scan_in / scan_out), ports
/// x0..x{pi-1} and z0..z{po-1}. Pure text generation — no external tools
/// are invoked; the output round-trips through any Verilog simulator.
std::string to_verilog(const ScanCircuit& circuit,
                       const std::string& module_name = "");

/// Emit a self-checking Verilog testbench applying a functional scan test
/// set to the module produced by to_verilog: for every test it shifts in
/// the initial state, clocks the input sequence while comparing the
/// primary outputs against the expected trace, shifts out and compares the
/// final state, and prints PASS/FAIL counts. `expected_po[t][c]` must hold
/// the fault-free output word of test t at cycle c (e.g. from a
/// StateTable::trace call).
std::string to_verilog_testbench(
    const ScanCircuit& circuit, const TestSet& tests,
    const std::vector<std::vector<std::uint32_t>>& expected_po,
    const std::string& module_name = "");

}  // namespace fstg
