#include "netlist/netlist.h"

#include <algorithm>

#include "base/error.h"

namespace fstg {

const char* gate_type_name(GateType type) {
  switch (type) {
    case GateType::kInput: return "INPUT";
    case GateType::kConst0: return "CONST0";
    case GateType::kConst1: return "CONST1";
    case GateType::kBuf: return "BUF";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kOr: return "OR";
    case GateType::kNand: return "NAND";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
  }
  return "?";
}

int Netlist::add_input(std::string name) {
  Gate g;
  g.type = GateType::kInput;
  g.name = std::move(name);
  gates_.push_back(std::move(g));
  inputs_.push_back(num_gates() - 1);
  return num_gates() - 1;
}

int Netlist::add_gate(GateType type, std::vector<int> fanins,
                      std::string name) {
  require(type != GateType::kInput, "use add_input for primary inputs");
  const int id = num_gates();
  switch (type) {
    case GateType::kConst0:
    case GateType::kConst1:
      require(fanins.empty(), "constants take no fanins");
      break;
    case GateType::kBuf:
    case GateType::kNot:
      require(fanins.size() == 1, "BUF/NOT take exactly one fanin");
      break;
    case GateType::kXor:
    case GateType::kXnor:
      require(fanins.size() >= 2, "XOR/XNOR take at least two fanins");
      break;
    default:
      require(!fanins.empty(), "AND/OR/NAND/NOR need at least one fanin");
      break;
  }
  for (int f : fanins)
    require(f >= 0 && f < id, "fanin id out of order (netlist is topological)");
  Gate g;
  g.type = type;
  g.fanins = std::move(fanins);
  g.name = std::move(name);
  gates_.push_back(std::move(g));
  return id;
}

void Netlist::add_output(int gate_id) {
  require(gate_id >= 0 && gate_id < num_gates(), "bad output gate id");
  outputs_.push_back(gate_id);
}

std::vector<std::vector<int>> Netlist::fanouts() const {
  std::vector<std::vector<int>> out(gates_.size());
  for (int id = 0; id < num_gates(); ++id)
    for (int f : gates_[static_cast<std::size_t>(id)].fanins)
      out[static_cast<std::size_t>(f)].push_back(id);
  return out;
}

std::vector<int> Netlist::levels() const {
  std::vector<int> level(gates_.size(), 0);
  for (int id = 0; id < num_gates(); ++id) {
    int l = 0;
    for (int f : gates_[static_cast<std::size_t>(id)].fanins)
      l = std::max(l, level[static_cast<std::size_t>(f)] + 1);
    level[static_cast<std::size_t>(id)] = l;
  }
  return level;
}

int Netlist::depth() const {
  std::vector<int> l = levels();
  return l.empty() ? 0 : *std::max_element(l.begin(), l.end());
}

std::vector<int> Netlist::type_histogram() const {
  std::vector<int> hist(static_cast<std::size_t>(GateType::kXnor) + 1, 0);
  for (const Gate& g : gates_) ++hist[static_cast<std::size_t>(g.type)];
  return hist;
}

std::vector<bool> Netlist::evaluate(std::uint64_t input_bits) const {
  std::vector<bool> value(gates_.size(), false);
  std::size_t input_index = 0;
  for (int id = 0; id < num_gates(); ++id) {
    const Gate& g = gates_[static_cast<std::size_t>(id)];
    bool v = false;
    switch (g.type) {
      case GateType::kInput:
        v = (input_bits >> input_index) & 1u;
        ++input_index;
        break;
      case GateType::kConst0: v = false; break;
      case GateType::kConst1: v = true; break;
      case GateType::kBuf: v = value[static_cast<std::size_t>(g.fanins[0])]; break;
      case GateType::kNot: v = !value[static_cast<std::size_t>(g.fanins[0])]; break;
      case GateType::kAnd:
      case GateType::kNand: {
        v = true;
        for (int f : g.fanins) v = v && value[static_cast<std::size_t>(f)];
        if (g.type == GateType::kNand) v = !v;
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        v = false;
        for (int f : g.fanins) v = v || value[static_cast<std::size_t>(f)];
        if (g.type == GateType::kNor) v = !v;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        // Parity over *all* fanins. (This evaluator used to read only the
        // first two, silently truncating n-ary XOR — difftest corpus case
        // xor_nary_parity pins the fix.)
        v = false;
        for (int f : g.fanins) v = v != value[static_cast<std::size_t>(f)];
        if (g.type == GateType::kXnor) v = !v;
        break;
      }
    }
    value[static_cast<std::size_t>(id)] = v;
  }
  return value;
}

std::uint64_t Netlist::evaluate_outputs(std::uint64_t input_bits) const {
  std::vector<bool> value = evaluate(input_bits);
  std::uint64_t out = 0;
  for (std::size_t k = 0; k < outputs_.size(); ++k)
    if (value[static_cast<std::size_t>(outputs_[k])]) out |= std::uint64_t{1} << k;
  return out;
}

void ScanCircuit::step(std::uint32_t state, std::uint32_t pi_bits,
                       std::uint32_t& po_bits,
                       std::uint32_t& next_state) const {
  const std::uint64_t in =
      (static_cast<std::uint64_t>(state) << num_pi) |
      (pi_bits & ((std::uint64_t{1} << num_pi) - 1));
  const std::uint64_t out = comb.evaluate_outputs(in);
  po_bits = static_cast<std::uint32_t>(out & ((std::uint64_t{1} << num_po) - 1));
  next_state = static_cast<std::uint32_t>(out >> num_po);
}

}  // namespace fstg
