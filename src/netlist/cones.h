#pragma once

#include <vector>

namespace fstg {

class Netlist;

/// Partition of a combinational netlist into fanout-free regions (FFRs):
/// maximal single-output subtrees. A gate is a *head* when its value is
/// observable beyond one place — it feeds an output of the netlist, has
/// fanout count != 1, or feeds a head through reconvergence; every other
/// gate belongs to the cone of the unique head it funnels into.
///
/// Faults inside one cone share the head's transitive fanout almost
/// entirely, so the fault-simulation engine sorts fault batches by cone:
/// consecutive faults re-touch the same overlay working set (cache-warm)
/// and a cone's total gate count is a usable per-fault work estimate for
/// sizing parallel chunks.
struct ConePartition {
  /// head[g] = id of the FFR head gate g funnels into (head[h] == h).
  std::vector<int> head;
  /// cone_id[g] = dense index (0..num_cones-1) of g's cone, ordered by
  /// ascending head id (deterministic for any netlist).
  std::vector<int> cone_id;
  /// cone_head[i] = head gate id of cone i (ascending).
  std::vector<int> cone_head;
  /// cone_size[i] = number of gates in cone i (>= 1).
  std::vector<int> cone_size;

  int num_cones() const { return static_cast<int>(cone_head.size()); }
};

/// Compute the fanout-free cone partition of `nl`. One reverse-topological
/// sweep (netlist ids are topological): O(gates + edges).
ConePartition fanout_free_cones(const Netlist& nl);

/// Sentinel ids for output_dominators(): `kDominatorSink` marks a gate whose
/// only post-dominator is the virtual sink behind all primary outputs (no
/// single gate funnels every path); `kDominatorDead` marks a gate from which
/// no primary output is reachable at all.
inline constexpr int kDominatorSink = -1;
inline constexpr int kDominatorDead = -2;

/// Immediate post-dominator of every gate toward the primary outputs:
/// dom[g] is the unique closest gate that every output path from g passes
/// through, kDominatorSink when the paths only reconverge at the virtual
/// sink (or g itself drives an output), and kDominatorDead when g is
/// unobservable. Every fault effect at g must pass through the whole chain
/// dom[g], dom[dom[g]], ... — the static unpropagatability check walks it.
/// One reverse-topological sweep with Cooper-Harvey-Kennedy intersection:
/// O(edges * chain length), in practice near-linear.
std::vector<int> output_dominators(const Netlist& nl);

}  // namespace fstg
