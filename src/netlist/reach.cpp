#include "netlist/reach.h"

namespace fstg {

std::vector<BitVec> forward_reachability(const Netlist& nl) {
  const std::size_t n = static_cast<std::size_t>(nl.num_gates());
  std::vector<BitVec> reach(n, BitVec(n));
  std::vector<std::vector<int>> fanouts = nl.fanouts();
  // Gates are stored topologically (fanin id < gate id), so every fanout of
  // g has a larger id than g; a single descending pass suffices.
  for (int g = nl.num_gates() - 1; g >= 0; --g) {
    BitVec& r = reach[static_cast<std::size_t>(g)];
    for (int f : fanouts[static_cast<std::size_t>(g)]) {
      r.set(static_cast<std::size_t>(f));
      r |= reach[static_cast<std::size_t>(f)];
    }
  }
  return reach;
}

}  // namespace fstg
