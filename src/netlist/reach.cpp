#include "netlist/reach.h"

#include "base/error.h"

namespace fstg {

std::vector<BitVec> forward_reachability(const Netlist& nl) {
  robust::RunGuard guard(robust::Budget{}, "reach.forward");
  robust::Result<std::vector<BitVec>> r =
      forward_reachability_guarded(nl, guard);
  // Unlimited budget cannot trip (fault injection can, but the legacy
  // entry point has no channel for partial results).
  if (!r.is_ok()) throw BudgetError(r.status().message());
  return r.take();
}

robust::Result<std::vector<BitVec>> forward_reachability_guarded(
    const Netlist& nl, robust::RunGuard& guard) {
  const std::size_t n = static_cast<std::size_t>(nl.num_gates());
  // The matrix is the dominant allocation: n rows of n bits.
  if (!guard.charge_memory(n * ((n + 7) / 8))) return guard.status();
  std::vector<BitVec> reach(n, BitVec(n));
  std::vector<std::vector<int>> fanouts = nl.fanouts();
  // Gates are stored topologically (fanin id < gate id), so every fanout of
  // g has a larger id than g; a single descending pass suffices.
  for (int g = nl.num_gates() - 1; g >= 0; --g) {
    if (!guard.tick(1 + fanouts[static_cast<std::size_t>(g)].size()))
      return guard.status();
    BitVec& r = reach[static_cast<std::size_t>(g)];
    for (int f : fanouts[static_cast<std::size_t>(g)]) {
      r.set(static_cast<std::size_t>(f));
      r |= reach[static_cast<std::size_t>(f)];
    }
  }
  return reach;
}

}  // namespace fstg
