#pragma once

#include <vector>

#include "base/bitvec.h"
#include "netlist/synth.h"

namespace fstg::store {
class BlobWriter;
class BlobReader;
}  // namespace fstg::store

namespace fstg {

/// --- Artifact-store codecs for synthesized netlists ----------------------
///
/// Binary snapshots of the gate-level derivation chain (base/store/serial.h
/// payloads): the netlist itself, the scan wrapper, the state encoding, the
/// minimized covers, the full SynthesisResult, and forward-reachability
/// matrices. Every deserializer re-validates the structural invariants the
/// builders enforce (topological fanin order, fanin arity per gate type,
/// encoding bijection, output words inside the declared widths) and returns
/// false — never throws — on any violation, so the cache layer can treat a
/// semantically damaged payload exactly like a checksum failure: a miss
/// that costs a recompute, never a wrong circuit.

void serialize_netlist(const Netlist& nl, store::BlobWriter& w);
bool deserialize_netlist(store::BlobReader& r, Netlist* out);

void serialize_scan_circuit(const ScanCircuit& circuit, store::BlobWriter& w);
bool deserialize_scan_circuit(store::BlobReader& r, ScanCircuit* out);

void serialize_encoding(const Encoding& encoding, store::BlobWriter& w);
bool deserialize_encoding(store::BlobReader& r, Encoding* out);

void serialize_cover(const Cover& cover, store::BlobWriter& w);
bool deserialize_cover(store::BlobReader& r, Cover* out);

void serialize_synthesis_result(const SynthesisResult& result,
                                store::BlobWriter& w);
bool deserialize_synthesis_result(store::BlobReader& r, SynthesisResult* out);

/// A vector of equal-length bit rows (forward-reachability matrices and
/// other structural masks).
void serialize_bitvec_matrix(const std::vector<BitVec>& rows,
                             store::BlobWriter& w);
bool deserialize_bitvec_matrix(store::BlobReader& r, std::vector<BitVec>* out);

}  // namespace fstg
