#include "netlist/snapshot.h"

#include <utility>

#include "base/error.h"
#include "base/store/serial.h"

namespace fstg {

namespace {

constexpr std::uint8_t kMaxGateType = static_cast<std::uint8_t>(GateType::kXnor);

std::vector<int> to_int_vec(const std::vector<std::int32_t>& v) {
  return std::vector<int>(v.begin(), v.end());
}

std::vector<std::int32_t> to_i32_vec(const std::vector<int>& v) {
  return std::vector<std::int32_t>(v.begin(), v.end());
}

}  // namespace

void serialize_netlist(const Netlist& nl, store::BlobWriter& w) {
  w.u64(static_cast<std::uint64_t>(nl.num_gates()));
  for (int g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    w.u8(static_cast<std::uint8_t>(gate.type));
    w.str(gate.name);
    w.vec_i32(to_i32_vec(gate.fanins));
  }
  w.vec_i32(to_i32_vec(nl.inputs()));
  w.vec_i32(to_i32_vec(nl.outputs()));
}

bool deserialize_netlist(store::BlobReader& r, Netlist* out) {
  const std::uint64_t num_gates = r.u64();
  // Each gate record is at least type(1) + two 8-byte length prefixes.
  if (!r.ok() || num_gates * 17 > r.remaining()) return false;
  Netlist nl;
  for (std::uint64_t g = 0; g < num_gates; ++g) {
    const std::uint8_t type = r.u8();
    std::string name = r.str();
    const std::vector<std::int32_t> fanins = r.vec_i32();
    if (!r.ok() || type > kMaxGateType) return false;
    // The builder re-enforces topological order and per-type fanin arity;
    // a violation in a decoded payload is corruption, not an error.
    try {
      if (static_cast<GateType>(type) == GateType::kInput) {
        if (!fanins.empty()) return false;
        nl.add_input(std::move(name));
      } else {
        nl.add_gate(static_cast<GateType>(type), to_int_vec(fanins),
                    std::move(name));
      }
    } catch (const Error&) {
      return false;
    }
  }
  const std::vector<std::int32_t> inputs = r.vec_i32();
  const std::vector<std::int32_t> outputs = r.vec_i32();
  if (!r.ok()) return false;
  // Inputs are implied by the gate records; the stored list must agree.
  if (to_int_vec(inputs) != nl.inputs()) return false;
  for (std::int32_t o : outputs) {
    if (o < 0 || o >= nl.num_gates()) return false;
    nl.add_output(o);
  }
  *out = std::move(nl);
  return true;
}

void serialize_scan_circuit(const ScanCircuit& circuit, store::BlobWriter& w) {
  serialize_netlist(circuit.comb, w);
  w.i32(circuit.num_pi);
  w.i32(circuit.num_po);
  w.i32(circuit.num_sv);
  w.str(circuit.name);
}

bool deserialize_scan_circuit(store::BlobReader& r, ScanCircuit* out) {
  ScanCircuit circuit;
  if (!deserialize_netlist(r, &circuit.comb)) return false;
  circuit.num_pi = r.i32();
  circuit.num_po = r.i32();
  circuit.num_sv = r.i32();
  circuit.name = r.str();
  if (!r.ok()) return false;
  if (circuit.num_pi < 0 || circuit.num_po < 0 || circuit.num_sv < 0)
    return false;
  if (circuit.comb.num_inputs() != circuit.comb_inputs() ||
      circuit.comb.num_outputs() != circuit.comb_outputs())
    return false;
  *out = std::move(circuit);
  return true;
}

void serialize_encoding(const Encoding& encoding, store::BlobWriter& w) {
  w.i32(encoding.state_bits);
  w.vec_u32(encoding.code_of_state);
  w.vec_i32(encoding.state_of_code);
}

bool deserialize_encoding(store::BlobReader& r, Encoding* out) {
  Encoding e;
  e.state_bits = r.i32();
  e.code_of_state = r.vec_u32();
  e.state_of_code = to_int_vec(r.vec_i32());
  if (!r.ok() || e.state_bits < 0 || e.state_bits > 24) return false;
  if (e.state_of_code.size() != e.num_codes()) return false;
  if (e.code_of_state.size() > e.num_codes()) return false;
  if (!e.valid()) return false;
  *out = std::move(e);
  return true;
}

void serialize_cover(const Cover& cover, store::BlobWriter& w) {
  w.i32(cover.num_vars());
  w.u64(cover.size());
  for (const Cube& c : cover.cubes()) w.u64(c.raw_bits());
}

bool deserialize_cover(store::BlobReader& r, Cover* out) {
  const std::int32_t num_vars = r.i32();
  const std::uint64_t num_cubes = r.u64();
  if (!r.ok() || num_vars < 0 || num_vars > 32) return false;
  if (num_cubes * 8 > r.remaining()) return false;
  const std::uint64_t var_mask =
      num_vars == 32 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << (2 * num_vars)) - 1;
  Cover cover(num_vars);
  for (std::uint64_t i = 0; i < num_cubes; ++i) {
    const std::uint64_t bits = r.u64();
    if (!r.ok()) return false;
    // No bits outside the variable range, and no 00 (empty) literal pair.
    if ((bits & ~var_mask) != 0) return false;
    Cube c = Cube::full(num_vars);
    for (int v = 0; v < num_vars; ++v) {
      const std::uint64_t lit = (bits >> (2 * v)) & 3u;
      if (lit == 0) return false;
      c.set(v, static_cast<Lit>(lit));
    }
    cover.add(c);
  }
  *out = std::move(cover);
  return true;
}

void serialize_synthesis_result(const SynthesisResult& result,
                                store::BlobWriter& w) {
  serialize_scan_circuit(result.circuit, w);
  serialize_encoding(result.encoding, w);
  w.u64(result.covers.size());
  for (const Cover& c : result.covers) serialize_cover(c, w);
}

bool deserialize_synthesis_result(store::BlobReader& r, SynthesisResult* out) {
  SynthesisResult result;
  if (!deserialize_scan_circuit(r, &result.circuit)) return false;
  if (!deserialize_encoding(r, &result.encoding)) return false;
  if (result.encoding.state_bits != result.circuit.num_sv) return false;
  const std::uint64_t num_covers = r.u64();
  if (!r.ok() || num_covers * 12 > r.remaining()) return false;
  if (num_covers != static_cast<std::uint64_t>(result.circuit.comb_outputs()))
    return false;
  result.covers.reserve(num_covers);
  for (std::uint64_t i = 0; i < num_covers; ++i) {
    Cover c;
    if (!deserialize_cover(r, &c)) return false;
    if (c.num_vars() != result.circuit.comb_inputs()) return false;
    result.covers.push_back(std::move(c));
  }
  *out = std::move(result);
  return true;
}

void serialize_bitvec_matrix(const std::vector<BitVec>& rows,
                             store::BlobWriter& w) {
  w.u64(rows.size());
  for (const BitVec& row : rows) {
    w.u64(row.size());
    w.vec_u64(row.words());
  }
}

bool deserialize_bitvec_matrix(store::BlobReader& r,
                               std::vector<BitVec>* out) {
  const std::uint64_t num_rows = r.u64();
  if (!r.ok() || num_rows * 16 > r.remaining()) return false;
  std::vector<BitVec> rows;
  rows.reserve(num_rows);
  for (std::uint64_t i = 0; i < num_rows; ++i) {
    const std::uint64_t size = r.u64();
    std::vector<std::uint64_t> words = r.vec_u64();
    if (!r.ok()) return false;
    if (words.size() != (size + 63) / 64) return false;
    // Tail bits past the logical size must be zero (the BitVec invariant).
    if ((size & 63) != 0 && (words.back() >> (size & 63)) != 0) return false;
    BitVec row(size);
    row.words() = std::move(words);
    rows.push_back(std::move(row));
  }
  *out = std::move(rows);
  return true;
}

}  // namespace fstg
